"""E15 — saturation: the asyncio batched front-end vs thread-per-session.

The serve layer (``repro.serve``) multiplexes thousands of concurrent
client sessions onto a handful of latch-crossing worker threads, and
batches their begins, lock acquisitions and commits so one latch
crossing serves many sessions and commit acks coalesce into group
fsyncs.  This benchmark prices that architecture against the baseline
every earlier experiment used — one OS thread per client on the blocking
API — at 1k / 10k / 100k concurrent sessions, in both latch modes, with
every measured run streaming-certified.

What the cells mean depends on the host, and the artifact records it:

* **multi-core** — the front-end's worker pool overlaps latch crossings
  with the event loop; committed txn/s at 10k sessions is gated at
  >= ``AB_GATE``x the thread-per-session baseline.
* **single-core** (CI containers; ``cpu_count`` in the artifact) — the
  GIL never parallelizes anything, so the async/threaded ratio prices
  the pure *message cost* of multiplexing (futures, queue hops, batch
  assembly).  No speedup gate applies; the front-end's win here is
  *holding* the 100k cell: the event loop keeps 100k live sessions in
  ordinary objects, while thread-per-session either dies at the OS
  thread ceiling (``error="cant-start-thread"``) or survives only
  because its spawn loop self-throttles — threads die faster than they
  start, so ``peak_live_threads`` (recorded per cell) stays orders of
  magnitude below the requested fleet and the cell never actually
  serves that many concurrent clients.

The workload is identical under both drivers (seeded per session index):
two commutative increments plus one read over a keyspace scaled with the
session count — saturation cells measure the serving architecture, not
lock contention, which E4/E12 already characterize.
"""

from __future__ import annotations

import json
import os

from repro.bench import Table, emit, scale
from repro.bench.reporting import RESULTS_DIR
from repro.serve.loadgen import (
    THREAD_STACK_BYTES,
    calibration_loop_ns,
    host_info,
    run_async_cell,
    run_threaded_cell,
)

MODES = ("global", "striped")
#: REPRO_BENCH_SCALE shrinks the sweep (CI smoke runs the 1k cell only,
#: via scripts/serve_bench.py); duplicates after scaling collapse.
SESSIONS = tuple(sorted({scale(1000), scale(10000), scale(100000)}))
MID = SESSIONS[1] if len(SESSIONS) > 1 else SESSIONS[0]
TOP = SESSIONS[-1]
CERTIFY = "streaming"  # every measured run is certified — no exceptions
AB_GATE = 2.0
#: Admission window for the top async cell.  A closed loop that opens
#: all 100k transactions at once makes one FIFO pass over the
#: submission queue take longer than ``lock_timeout``, so every lock
#: hold blows the deadline and throughput collapses into retries
#: (measured: 369 txn/s with 35k timeout aborts unbounded vs 1686 txn/s
#: with 0 aborts windowed).  The front-end still *holds* all sessions
#: concurrently — bounding in-flight transactions is the point: serving
#: 100k connections over an engine sized for thousands of open txns.
#: 1k/10k cells stay unbounded for direct comparability with threads.
TOP_INFLIGHT = 1024
CPU_COUNT = os.cpu_count() or 1
#: Same conditional-gate convention as E14: speedup is asserted only on
#: hosts with the cores to physically show it.
PARALLEL_HOST = CPU_COUNT >= 4


def _row(cell):
    txn = cell.get("txn_latency_ms", {})
    commit = cell.get("commit_latency_ms", {})
    serve = cell.get("serve") or {}
    return {
        "driver": cell["driver"],
        "latch_mode": cell["latch_mode"],
        "sessions": cell["sessions"],
        "committed_per_s": cell.get("committed_per_s", 0.0),
        "txn_p50_ms": txn.get("p50", 0.0),
        "txn_p99_ms": txn.get("p99", 0.0),
        "commit_p99_ms": commit.get("p99", 0.0),
        "aborted": cell.get("aborted", 0),
        "parked": serve.get("parked", ""),
        "certified": cell.get("certified", False),
        "error": cell.get("error", ""),
    }


def _run_cells():
    cells = []
    for sessions in SESSIONS:
        inflight = (
            TOP_INFLIGHT
            if sessions >= TOP and len(SESSIONS) > 1 else None
        )
        for mode in MODES:
            cells.append(
                run_async_cell(
                    mode, sessions=sessions, certify=CERTIFY,
                    max_inflight=inflight,
                )
            )
    for sessions in SESSIONS:
        if sessions >= TOP and len(SESSIONS) > 1:
            continue  # the ceiling attempt below covers the top cell
        for mode in MODES:
            cells.append(
                run_threaded_cell(mode, sessions=sessions, certify=CERTIFY)
            )
    if len(SESSIONS) > 1:
        # The ceiling attempt: thread-per-session at the top cell.
        # Either it dies at the OS thread ceiling (the cell reports
        # error="cant-start-thread" with the count reached), or it
        # survives because the spawn loop self-throttles — in which
        # case peak_live_threads records how few clients were ever
        # actually concurrent.  Both outcomes are the measurement the
        # asyncio cells escape: they *hold* the whole fleet live.
        cells.append(run_threaded_cell("global", sessions=TOP, certify=CERTIFY))
    return cells


def _find(cells, driver, mode, sessions):
    for cell in cells:
        if (
            cell["driver"] == driver
            and cell["latch_mode"] == mode
            and cell["sessions"] == sessions
        ):
            return cell
    return None


def test_e15_saturation(benchmark):
    cells = benchmark.pedantic(_run_cells, rounds=1, iterations=1)
    host = host_info()
    cal_ns = calibration_loop_ns()

    # --- the A/B quotient the archetype is about -------------------------
    async_mid = _find(cells, "async", "global", MID)
    threaded_mid = _find(cells, "threaded", "global", MID)
    ratio = None
    if async_mid and threaded_mid and threaded_mid.get("committed_per_s"):
        ratio = round(
            async_mid["committed_per_s"] / threaded_mid["committed_per_s"], 3
        )
    ab = {
        "sessions": MID,
        "latch_mode": "global",
        "async_per_s": async_mid["committed_per_s"] if async_mid else None,
        "threaded_per_s": (
            threaded_mid["committed_per_s"] if threaded_mid else None
        ),
        "ratio": ratio,
        "gate": AB_GATE,
        "gate_applied": PARALLEL_HOST,
    }

    table = Table(
        [
            "driver",
            "latch_mode",
            "sessions",
            "committed_per_s",
            "txn_p50_ms",
            "txn_p99_ms",
            "commit_p99_ms",
            "aborted",
            "parked",
            "certified",
            "error",
        ]
    )
    for cell in cells:
        table.add_dict(_row(cell))
    ceiling = _find(cells, "threaded", "global", TOP)
    if ceiling is None:
        ceiling_note = ""
    elif ceiling.get("error"):
        ceiling_note = (
            "\nCeiling: the %d-session threaded cell died at the OS thread"
            " ceiling after %d threads; the async cells hold the fleet."
            % (TOP, ceiling["threads_started"])
        )
    else:
        ceiling_note = (
            "\nCeiling: the %d-session threaded cell survived only by"
            " self-throttling (peak %d live threads — it never actually"
            " held the fleet); the async cells hold all sessions live."
            % (TOP, ceiling.get("peak_live_threads", 0))
        )
    emit(
        "E15: saturation — async batched front-end vs thread-per-session"
        " (cpu_count=%d)" % CPU_COUNT,
        table,
        notes=(
            "Every measured run is streaming-certified.  cpu_count=%d: %s\n"
            "A/B at %d sessions (global): async/threaded = %s (gate %.1fx %s)."
            "%s"
            % (
                CPU_COUNT,
                "multi-core — the async/threaded quotient is the GIL escape."
                if PARALLEL_HOST
                else "single-core — the quotient prices multiplexing message"
                " cost.",
                MID,
                ratio,
                AB_GATE,
                "applied" if PARALLEL_HOST else "recorded only",
                ceiling_note,
            )
        ),
    )

    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact = {
        "experiment": "e15-saturation",
        "host": host,
        "calibration_loop_ns": round(cal_ns, 2),
        "certify": CERTIFY,
        "thread_stack_bytes": THREAD_STACK_BYTES,
        "session_cells": list(SESSIONS),
        "ab": ab,
        "cells": cells,
    }
    with open(os.path.join(RESULTS_DIR, "BENCH_e15_saturation.json"), "w") as fh:
        json.dump(artifact, fh, indent=2)

    # --- acceptance ------------------------------------------------------
    for cell in cells:
        if cell.get("error"):
            # The ceiling cell: the refusal must be the thread ceiling,
            # reached strictly below the requested fleet, and whatever
            # sessions did run must still certify.
            assert cell["error"] == "cant-start-thread", cell
            assert cell["threads_started"] < cell["sessions"], cell
        else:
            assert cell["completed_sessions"] == cell["sessions"], cell
        assert cell["certified"], cell
    # Async cells must survive every size — including the top cell the
    # baseline cannot start — in both latch modes.
    for sessions in SESSIONS:
        for mode in MODES:
            cell = _find(cells, "async", mode, sessions)
            assert cell is not None and cell["committed_per_s"] > 0, cell
    # The batch path must actually batch: fewer latch crossings than ops.
    for cell in cells:
        serve = cell.get("serve")
        if serve and serve["ops"]:
            assert serve["batches"] < serve["ops"], cell
            assert serve["batch_size"] and serve["batch_size"]["count"] > 0
    if PARALLEL_HOST and ratio is not None:
        assert ratio >= AB_GATE, ab
