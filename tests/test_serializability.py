"""Unit tests for serializability search (paper Section 3.4)."""

from __future__ import annotations

import pytest

from repro.core import (
    ACTIVE,
    COMMITTED,
    ActionTree,
    SearchBudgetExceeded,
    U,
    Universe,
    add,
    find_serializing_order,
    is_serializable,
    is_serializing,
    read,
    serial_schedule,
    write,
)
from repro.core.serializability import induced_before, preds, sibling_families


def two_transfer_universe():
    """Two top-level actions each writing then reading x."""
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(1))
    universe.declare_access(t1.child("r"), "x", read())
    universe.declare_access(t2.child("w"), "x", write(2))
    universe.declare_access(t2.child("r"), "x", read())
    return universe, t1, t2


def committed_tree(universe, labels):
    status = {U: ACTIVE}
    for access in labels:
        for anc in access.proper_ancestors():
            if not anc.is_root:
                status[anc] = COMMITTED
        status[access] = COMMITTED
    return ActionTree(universe, status, labels)


class TestSerializableTrees:
    def test_serial_history_is_serializable(self):
        universe, t1, t2 = two_transfer_universe()
        # t1 entirely before t2: t1 reads its own write, t2 reads its own.
        labels = {
            t1.child("w"): 0,
            t1.child("r"): 1,
            t2.child("w"): 1,
            t2.child("r"): 2,
        }
        tree = committed_tree(universe, labels)
        order = find_serializing_order(tree)
        assert order is not None
        assert is_serializing(tree, order)
        assert (t1, t2) == tuple(order[U][:2]) or order[U].index(t1) < order[U].index(t2)

    def test_non_serializable_history(self):
        universe, t1, t2 = two_transfer_universe()
        # Both transactions read the *other's* write: no serial order works.
        labels = {
            t1.child("w"): 0,
            t1.child("r"): 2,
            t2.child("w"): 0,
            t2.child("r"): 1,
        }
        tree = committed_tree(universe, labels)
        assert not is_serializable(tree)

    def test_empty_tree_is_serializable(self):
        universe, _t1, _t2 = two_transfer_universe()
        assert is_serializable(ActionTree.initial(universe))

    def test_single_access(self):
        universe = Universe()
        universe.define_object("x", init=5)
        a = U.child(1)
        universe.declare_access(a, "x", add(1))
        tree = committed_tree(universe, {a: 5})
        assert is_serializable(tree)
        # The wrong label is not serializable.
        bad = committed_tree(universe, {a: 6})
        assert not is_serializable(bad)

    def test_serial_schedule_matches_order(self):
        universe, t1, t2 = two_transfer_universe()
        labels = {
            t1.child("w"): 0,
            t1.child("r"): 1,
            t2.child("w"): 1,
            t2.child("r"): 2,
        }
        tree = committed_tree(universe, labels)
        order = find_serializing_order(tree)
        schedule = serial_schedule(tree, order)
        assert len(schedule) == 4
        assert set(schedule) == set(labels)


class TestConstructiveDirection:
    """Trees built by *simulating a serial execution* are serializable —
    the constructive converse of the search."""

    def _serial_tree(self, seed):
        import random as _random

        from repro.core import add as add_update

        rng = _random.Random(seed)
        universe = Universe()
        n_objects = rng.randint(1, 3)
        for j in range(n_objects):
            universe.define_object("x%d" % j, init=0)
        # Random flat transactions with accesses, executed serially in a
        # random order; labels are whatever the serial replay produces.
        txns = [U.child(i) for i in range(rng.randint(1, 4))]
        accesses = []
        for t in txns:
            for k in range(rng.randint(1, 3)):
                a = t.child(k)
                obj = "x%d" % rng.randrange(n_objects)
                roll = rng.random()
                update = (
                    read()
                    if roll < 0.4
                    else write(rng.randint(1, 9))
                    if roll < 0.7
                    else add_update(1)
                )
                universe.declare_access(a, obj, update)
                accesses.append(a)
        order = list(txns)
        rng.shuffle(order)
        values = {obj: universe.init(obj) for obj in universe.objects}
        labels = {}
        for t in order:
            for a in sorted(accesses):
                if not t.is_ancestor_of(a):
                    continue
                obj = universe.object_of(a)
                labels[a] = values[obj]
                values[obj] = universe.update_of(a)(values[obj])
        status = {U: "active"}
        for t in txns:
            status[t] = "committed"
        for a in accesses:
            status[a] = "committed"
        return ActionTree(universe, status, labels)

    def test_serial_executions_always_serializable(self):
        for seed in range(25):
            tree = self._serial_tree(seed)
            assert is_serializable(tree, budget=500_000), seed


class TestSearchMechanics:
    def test_budget_enforced(self):
        universe = Universe()
        universe.define_object("x", init=0)
        # 8 children of U, all writes: 8! orderings (all serializable, but
        # force exhaustion by demanding an impossible label first).
        labels = {}
        for i in range(8):
            a = U.child(i)
            universe.declare_access(a, "x", add(1))
            labels[a] = 99  # impossible: replay can never give 99
        tree = committed_tree(universe, labels)
        with pytest.raises(SearchBudgetExceeded):
            find_serializing_order(tree, budget=100)

    def test_sibling_families(self):
        universe, t1, t2 = two_transfer_universe()
        labels = {t1.child("w"): 0}
        tree = committed_tree(universe, labels)
        families = sibling_families(tree)
        assert families[U] == [t1]
        assert families[t1] == [t1.child("w")]

    def test_induced_before(self):
        universe, t1, t2 = two_transfer_universe()
        order = {
            U: (t1, t2),
            t1: (t1.child("w"), t1.child("r")),
            t2: (t2.child("w"), t2.child("r")),
        }
        assert induced_before(order, t1.child("w"), t2.child("r"))
        assert not induced_before(order, t2.child("r"), t1.child("w"))
        assert not induced_before(order, t1.child("w"), t1.child("w"))
        # Ancestor pairs are unrelated.
        assert not induced_before(order, t1, t1.child("w"))

    def test_preds_sequence(self):
        universe, t1, t2 = two_transfer_universe()
        labels = {
            t1.child("w"): 0,
            t1.child("r"): 1,
            t2.child("w"): 1,
            t2.child("r"): 2,
        }
        tree = committed_tree(universe, labels)
        order = {
            U: (t1, t2),
            t1: (t1.child("w"), t1.child("r")),
            t2: (t2.child("w"), t2.child("r")),
        }
        assert preds(tree, order, t1.child("w")) == []
        # Reads are data steps too: all three visible same-object steps
        # precede t2's read in induced order.
        assert preds(tree, order, t2.child("r")) == [
            t1.child("w"),
            t1.child("r"),
            t2.child("w"),
        ]

    def test_nested_serialization_freedom(self):
        """Subtransactions serialize in either order; the search finds the
        one matching the labels even against name order."""
        universe = Universe()
        universe.define_object("x", init=0)
        t = U.child(1)
        universe.declare_access(t.child(0), "x", read())   # sees 7 => must come after write
        universe.declare_access(t.child(1), "x", write(7))
        labels = {t.child(0): 7, t.child(1): 0}
        tree = committed_tree(universe, labels)
        order = find_serializing_order(tree)
        assert order is not None
        assert order[t] == (t.child(1), t.child(0))
