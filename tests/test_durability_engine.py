"""Engine-level durability tests: the WAL/checkpoint/recovery stack wired
into ``NestedTransactionDB`` via the ``durability=`` flag, plus the
injectable retry backoff clock and the atomic trace dump."""

import json
import threading

import pytest

from repro.durability import DurabilityManager
from repro.durability.wal import replay_commits
from repro.engine import EngineConfig, NestedTransactionDB
from repro.engine.errors import TransactionAborted
from repro.engine.recovery import InjectedFailure, retry_subtransaction
from repro.engine.retry import RetryPolicy
from repro.engine.trace import TraceRecorder
from repro.obs import EventBus, MetricsRegistry, RingBufferSink

LATCHES = ["global", "striped"]


def make_db(tmp_path, latch="global", **kwargs):
    manager = DurabilityManager(str(tmp_path / "wal"), **kwargs)
    return NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(latch_mode=latch, durability=manager))


def increment(t, obj="x"):
    with t.subtransaction() as s:
        s.write(obj, s.read_for_update(obj) + 1)


# ---------------------------------------------------------------------------
# Persistence across reopen
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("latch", LATCHES)
def test_commits_survive_reopen(tmp_path, latch):
    db = make_db(tmp_path, latch)
    for _ in range(3):
        db.run_transaction(increment)
    db.run_transaction(lambda t: increment(t, "y"))
    assert db.snapshot() == {"x": 3, "y": 1}
    db.close()

    db = make_db(tmp_path, latch)
    assert db.snapshot() == {"x": 3, "y": 1}
    assert db.initial_values == {"x": 3, "y": 1}  # oracle replays from here
    db.run_transaction(increment)
    assert db.snapshot() == {"x": 4, "y": 1}
    db.close()


@pytest.mark.parametrize("latch", LATCHES)
def test_aborted_transactions_leave_no_trace_in_wal(tmp_path, latch):
    db = make_db(tmp_path, latch)

    class Boom(Exception):
        pass

    def poison(t):
        # An aborted subtransaction under a committing parent...
        child = t.begin_subtransaction()
        child.write("x", 666)
        child.abort()
        t.write("y", 1)

    def poison_top(t):
        # ...and an aborting top-level transaction.
        t.write("x", 666)
        raise Boom()

    db.run_transaction(poison)
    with pytest.raises(Boom):
        db.run_transaction(poison_top)
    db.close()

    commits, stats = replay_commits(str(tmp_path / "wal"))
    assert [c.writes for c in commits] == [{"y": 1}]
    assert stats.discarded_records == 0

    db = make_db(tmp_path, latch)
    assert db.snapshot() == {"x": 0, "y": 1}
    db.close()


def test_subtransaction_commit_not_in_wal_until_top_commit(tmp_path):
    db = make_db(tmp_path)
    wal = db.durability.wal
    mid_commits = []

    def body(t):
        with t.subtransaction() as s:
            s.write("x", 41)
        # The child has committed (into the parent, in memory) but the
        # top-level transaction has not: nothing may be in the log yet.
        mid_commits.append(wal.appended_commits)
        t.write("x", 42)

    db.run_transaction(body)
    assert mid_commits == [0]
    assert wal.appended_commits == 1
    db.close()
    commits, _stats = replay_commits(str(tmp_path / "wal"))
    assert [c.writes for c in commits] == [{"x": 42}]


def test_read_only_transactions_log_nothing(tmp_path):
    db = make_db(tmp_path)
    db.run_transaction(lambda t: t.read("x"))
    assert db.durability.wal.appended_commits == 0
    db.close()


def test_durability_accepts_a_plain_path(tmp_path):
    db = NestedTransactionDB({"x": 0}, config=EngineConfig(durability=str(tmp_path / "wal")))
    assert isinstance(db.durability, DurabilityManager)
    db.run_transaction(increment)
    db.close()
    db = NestedTransactionDB({"x": 0}, config=EngineConfig(durability=str(tmp_path / "wal")))
    assert db.snapshot() == {"x": 1}
    db.close()


@pytest.mark.parametrize("latch", LATCHES)
def test_concurrent_durable_commits(tmp_path, latch):
    db = make_db(tmp_path, latch, sync_policy="group", group_window=0.001)
    per_thread = 10

    def worker():
        for _ in range(per_thread):
            db.run_transaction(increment)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert db.snapshot()["x"] == 4 * per_thread
    db.close()

    db = make_db(tmp_path, latch)
    assert db.snapshot()["x"] == 4 * per_thread
    db.close()


# ---------------------------------------------------------------------------
# Checkpoints through the engine
# ---------------------------------------------------------------------------


def test_explicit_checkpoint_truncates_and_recovers(tmp_path):
    db = make_db(tmp_path, segment_max_bytes=1)
    for _ in range(5):
        db.run_transaction(increment)
    data = db.checkpoint()
    assert data is not None and data.values["x"] == 5
    db.run_transaction(increment)
    db.close()

    db = make_db(tmp_path)
    recovery = db.durability.last_recovery
    assert db.snapshot()["x"] == 6
    assert recovery.checkpoint_seq == data.seq
    assert recovery.commits_replayed == 1  # only the post-checkpoint commit
    db.close()


def test_auto_checkpoint_every_n_commits(tmp_path):
    db = make_db(tmp_path, checkpoint_interval=2)
    for _ in range(5):
        db.run_transaction(increment)
    assert db.durability.checkpointer.latest().seq >= 2
    db.close()
    db = make_db(tmp_path)
    assert db.snapshot()["x"] == 5
    db.close()


def test_checkpoint_without_durability_rejected():
    db = NestedTransactionDB({"x": 0})
    with pytest.raises(ValueError):
        db.checkpoint()


# ---------------------------------------------------------------------------
# Observability wiring
# ---------------------------------------------------------------------------


def test_wal_metrics_and_events(tmp_path):
    metrics = MetricsRegistry()
    sink = RingBufferSink()
    events = EventBus()
    events.attach(sink)
    manager = DurabilityManager(str(tmp_path / "wal"), checkpoint_interval=2)
    db = NestedTransactionDB({"x": 0}, config=EngineConfig(durability=manager, metrics=metrics, events=events))
    for _ in range(3):
        db.run_transaction(increment)
    db.close()

    snap = metrics.snapshot()
    assert snap["counters"]["wal_commits_total"] == 3
    assert snap["counters"]["wal_syncs_total"] >= 1
    assert snap["counters"]["checkpoints_total"] >= 1
    assert snap["gauges"]["wal_durable_lsn"] > 0
    assert snap["histograms"]["wal_sync_seconds"]["count"] >= 1

    assert len(sink.of_kind("recovery_completed")) == 1
    logged = sink.of_kind("wal_commit_logged")
    assert [e.objects for e in logged] == [1, 1, 1]  # one object per batch
    assert sink.of_kind("wal_synced")
    taken = sink.of_kind("checkpoint_taken")
    assert taken and taken[0].seq == 1


def test_recovery_event_reports_replay(tmp_path):
    db = make_db(tmp_path)
    db.run_transaction(increment)
    db.close()

    sink = RingBufferSink()
    events = EventBus()
    events.attach(sink)
    manager = DurabilityManager(str(tmp_path / "wal"))
    db = NestedTransactionDB({"x": 0}, config=EngineConfig(durability=manager, events=events))
    db.close()
    (event,) = sink.of_kind("recovery_completed")
    assert event.commits_replayed == 1
    assert event.clean


# ---------------------------------------------------------------------------
# Satellite: injectable backoff clock
# ---------------------------------------------------------------------------


def test_run_transaction_backoff_uses_injected_clock():
    db = NestedTransactionDB({"x": 0})
    sleeps = []
    attempts = []

    def flaky(t):
        attempts.append(1)
        if len(attempts) < 3:
            raise TransactionAborted("try again")
        t.write("x", len(attempts))

    db.run_transaction(
        flaky,
        policy=RetryPolicy(max_retries=5, backoff=0.25),
        sleep_fn=sleeps.append,
    )
    assert db.snapshot() == {"x": 3}
    assert sleeps == [0.25, 0.5]  # linear backoff, no wall-clock waits


def test_retry_subtransaction_backoff_uses_injected_clock():
    db = NestedTransactionDB({"x": 0})
    sleeps = []
    calls = []

    def body(t):
        def child_fn(child):
            calls.append(1)
            if len(calls) < 3:
                raise InjectedFailure("flaky")
            child.write("x", 7)

        retry_subtransaction(
            t,
            child_fn,
            policy=RetryPolicy(max_retries=4, backoff=0.1),
            sleep_fn=sleeps.append,
        )

    db.run_transaction(body)
    assert db.snapshot() == {"x": 7}
    assert sleeps == [0.1, 0.2]


# ---------------------------------------------------------------------------
# Satellite: atomic trace dump
# ---------------------------------------------------------------------------


def test_trace_dump_is_atomic(tmp_path):
    db = NestedTransactionDB({"x": 0})
    db.run_transaction(increment)
    path = str(tmp_path / "trace.jsonl")
    db.trace.dump(path)
    loaded = TraceRecorder.load(path)
    assert len(loaded) == len(db.trace)
    assert not [n for n in tmp_path.iterdir() if n.name.endswith(".tmp")]

    # A failing dump must leave the previous file untouched (and clean up
    # its temp file) — never a torn trace.
    with open(path, encoding="utf-8") as fh:
        before = fh.read()
    bad = TraceRecorder()
    bad.record_perform(
        db.trace.records[0].txn,
        db.trace.records[0].txn,
        "x",
        "write",
        seen=object(),  # not JSON-serializable
    )
    with pytest.raises(TypeError):
        bad.dump(path)
    with open(path, encoding="utf-8") as fh:
        assert fh.read() == before
    assert not [n for n in tmp_path.iterdir() if n.name.endswith(".tmp")]
    assert json.loads(before.splitlines()[0])["op"] == "create"
