"""Moss locking rules under forced thread interleavings.

These tests use events/barriers to pin down exact interleavings: sibling
conflicts block, read locks are shared, locks inherit on commit, and the
single-mode configuration makes reads conflict too.
"""

from __future__ import annotations

import threading
import time


from repro.engine import EngineConfig, NestedTransactionDB, READ, WRITE, ObjectLocks
from repro.core.naming import U

WAIT = 5.0


def run_thread(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestObjectLocks:
    def test_write_blocks_non_ancestor(self):
        locks = ObjectLocks()
        holder = U.child(1)
        locks.grant(holder, WRITE)
        assert locks.conflicts_with(U.child(2), WRITE) == [holder]
        assert locks.conflicts_with(U.child(2), READ) == [holder]

    def test_ancestor_holder_never_conflicts(self):
        locks = ObjectLocks()
        locks.grant(U.child(1), WRITE)
        child = U.child(1).child(0)
        assert locks.conflicts_with(child, WRITE) == []
        assert locks.conflicts_with(child, READ) == []

    def test_read_locks_are_shared(self):
        locks = ObjectLocks()
        locks.grant(U.child(1), READ)
        assert locks.conflicts_with(U.child(2), READ) == []
        assert locks.conflicts_with(U.child(2), WRITE) == [U.child(1)]

    def test_upgrade_read_to_write(self):
        locks = ObjectLocks()
        t = U.child(1)
        locks.grant(t, READ)
        assert locks.conflicts_with(t, WRITE) == []
        locks.grant(t, WRITE)
        assert locks.mode_of(t) == WRITE
        # write is never downgraded
        locks.grant(t, READ)
        assert locks.mode_of(t) == WRITE

    def test_inherit_merges_modes(self):
        locks = ObjectLocks()
        parent, child = U.child(1), U.child(1).child(0)
        locks.grant(parent, READ)
        locks.grant(child, WRITE)
        locks.inherit(child)
        assert locks.mode_of(parent) == WRITE
        assert locks.mode_of(child) is None

    def test_discard(self):
        locks = ObjectLocks()
        locks.grant(U.child(1), WRITE)
        locks.discard(U.child(1))
        assert locks.mode_of(U.child(1)) is None


class TestBlockingBehaviour:
    def test_writer_blocks_sibling_writer_until_commit(self):
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lock_timeout=WAIT))
        t1 = db.begin_transaction()
        t1.write("x", 1)
        got_lock = threading.Event()
        result = {}

        def second():
            t2 = db.begin_transaction()
            result["value"] = t2.read("x")
            got_lock.set()
            t2.commit()

        thread = run_thread(second)
        assert not got_lock.wait(0.15)  # blocked while t1 holds the write lock
        t1.commit()
        assert got_lock.wait(WAIT)
        thread.join(WAIT)
        assert result["value"] == 1  # committed value visible after inherit to U

    def test_abort_releases_and_unblocks(self):
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lock_timeout=WAIT))
        t1 = db.begin_transaction()
        t1.write("x", 1)
        got = threading.Event()
        result = {}

        def second():
            result["value"] = db.run_transaction(lambda t: t.read("x"))
            got.set()

        thread = run_thread(second)
        assert not got.wait(0.15)
        t1.abort()
        assert got.wait(WAIT)
        thread.join(WAIT)
        assert result["value"] == 0  # abort restored the old value

    def test_concurrent_readers_do_not_block(self):
        db = NestedTransactionDB({"x": 7}, config=EngineConfig(lock_timeout=WAIT))
        t1 = db.begin_transaction()
        assert t1.read("x") == 7
        done = threading.Event()

        def second():
            t2 = db.begin_transaction()
            assert t2.read("x") == 7
            done.set()
            t2.commit()

        thread = run_thread(second)
        assert done.wait(WAIT)  # no blocking: shared read locks
        thread.join(WAIT)
        t1.commit()

    def test_single_mode_makes_reads_exclusive(self):
        db = NestedTransactionDB({"x": 7}, config=EngineConfig(single_mode=True, lock_timeout=WAIT))
        t1 = db.begin_transaction()
        t1.read("x")
        progressed = threading.Event()

        def second():
            t2 = db.begin_transaction()
            t2.read("x")
            progressed.set()
            t2.commit()

        thread = run_thread(second)
        assert not progressed.wait(0.15)  # reader blocks reader in single mode
        t1.commit()
        assert progressed.wait(WAIT)
        thread.join(WAIT)

    def test_parent_lock_admits_children(self):
        """A parent's write lock never blocks its own descendants."""
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lock_timeout=WAIT))
        with db.transaction() as t:
            t.write("x", 1)
            with t.subtransaction() as s:
                s.write("x", 2)
                with s.subtransaction() as g:
                    assert g.read("x") == 2
        assert db.snapshot()["x"] == 2

    def test_sibling_children_conflict(self):
        """Two children of the same parent conflict on writes like any
        other non-ancestor pair."""
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lock_timeout=WAIT))
        parent = db.begin_transaction()
        c1 = parent.begin_subtransaction()
        c1.write("x", 1)
        advanced = threading.Event()

        def second():
            c2 = parent.begin_subtransaction()
            c2.write("x", 2)
            advanced.set()
            c2.commit()

        thread = run_thread(second)
        assert not advanced.wait(0.15)
        c1.commit()  # lock inherits to parent — an ancestor of c2
        assert advanced.wait(WAIT)
        thread.join(WAIT)
        parent.commit()
        assert db.snapshot()["x"] == 2

    def test_lock_wait_statistics(self):
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lock_timeout=WAIT))
        t1 = db.begin_transaction()
        t1.write("x", 1)

        def second():
            db.run_transaction(lambda t: t.write("x", 2))

        thread = run_thread(second)
        time.sleep(0.1)
        t1.commit()
        thread.join(WAIT)
        assert db.stats.lock_waits >= 1


class TestLazyLockCleanup:
    def test_dead_holders_reaped_on_demand(self):
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(lazy_lock_cleanup=True, lock_timeout=WAIT))
        t1 = db.begin_transaction()
        t1.write("x", 5)
        t1.abort()
        # The lock table still carries the dead holder; a new request
        # reaps it (the lazily-fired lose-lock event).
        value = db.run_transaction(lambda t: t.read("x"))
        assert value == 0
        assert db.stats.lazy_lock_reaps >= 1
