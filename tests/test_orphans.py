"""Orphans' views (paper §1, Goree [4] direction).

Demonstrates, with the orphan-view checker, exactly what the paper says:
the basic correctness conditions do not constrain orphans (level 2 admits
inconsistent orphan views), while the locking algorithm keeps orphans
consistent — up to the lose-lock subtlety that makes the full orphan
problem hard.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import orphan_view_report
from repro.core import (
    Abort,
    Commit,
    Create,
    Level2Algebra,
    Level3Algebra,
    Level4Algebra,
    LoseLock,
    Perform,
    ReleaseLock,
    RunConfig,
    U,
    Universe,
    random_run,
    random_scenario,
    read,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(7))
    universe.declare_access(t2.child("r"), "x", read())
    return universe


def orphan_read_run(value):
    """t1 commits a write of 7; t2 aborts, then its (orphan) read performs
    seeing ``value``."""
    t1, t2 = U.child(1), U.child(2)
    return [
        Create(t1),
        Create(t1.child("w")),
        Perform(t1.child("w"), 0),
        Commit(t1),
        Create(t2),
        Create(t2.child("r")),
        Abort(t2),
        Perform(t2.child("r"), value),
    ]


class TestLevel2AdmitsInconsistentOrphans:
    def test_garbage_orphan_view_is_a_valid_level2_run(self, uni):
        """(d13) is waived for dead accesses: the algebra accepts an
        orphan seeing 12345."""
        algebra = Level2Algebra(uni)
        events = orphan_read_run(12345)
        assert algebra.is_valid(events)
        report = orphan_view_report(algebra, events)
        assert report.orphan_performs == 1
        assert report.orphan_anomalies == 1
        assert not report.orphans_consistent
        anomaly = report.anomalies[0]
        assert anomaly.was_orphan
        assert anomaly.saw == 12345
        assert anomaly.consistent_value == 7
        assert "orphan" in str(anomaly)

    def test_consistent_orphan_view_reported_clean(self, uni):
        algebra = Level2Algebra(uni)
        events = orphan_read_run(7)
        assert algebra.is_valid(events)
        report = orphan_view_report(algebra, events)
        assert report.orphan_performs == 1
        assert report.orphans_consistent
        assert report.all_consistent


class TestLockingProtectsOrphans:
    def test_level3_orphan_sees_consistent_view(self, uni):
        """At level 3 the orphan's value is forced to the principal value,
        which (with no lose-lock fired) is the consistent view."""
        t1, t2 = U.child(1), U.child(2)
        algebra = Level3Algebra(uni)
        events = [
            Create(t1),
            Create(t1.child("w")),
            Perform(t1.child("w"), 0),
            ReleaseLock(t1.child("w"), "x"),
            Commit(t1),
            ReleaseLock(t1, "x"),
            Create(t2),
            Create(t2.child("r")),
            Abort(t2),
            Perform(t2.child("r"), 7),  # forced: 7 is the principal value
        ]
        assert algebra.is_valid(events)
        report = orphan_view_report(algebra, events)
        assert report.orphan_performs == 1
        assert report.orphans_consistent

    def test_level3_rejects_garbage_orphan_view(self, uni):
        """The same run with the orphan claiming 12345 is not even a valid
        level-3 computation — locking enforces what level 2 only hopes."""
        t1, t2 = U.child(1), U.child(2)
        algebra = Level3Algebra(uni)
        prefix = [
            Create(t1),
            Create(t1.child("w")),
            Perform(t1.child("w"), 0),
            ReleaseLock(t1.child("w"), "x"),
            Commit(t1),
            ReleaseLock(t1, "x"),
            Create(t2),
            Create(t2.child("r")),
            Abort(t2),
        ]
        state = algebra.run(prefix)
        assert not algebra.enabled(state, Perform(t2.child("r"), 12345))

    def test_lose_lock_can_time_warp_an_orphan(self):
        """The Goree subtlety: after a lose-lock discards a dead relative's
        version, a later orphan in the same doomed family sees a view in
        which the visible relative's work vanished."""
        universe = Universe()
        universe.define_object("x", init=0)
        t = U.child(1)
        sub = t.child("sub")
        universe.declare_access(sub.child("w"), "x", write(9))
        universe.declare_access(t.child("r"), "x", read())
        algebra = Level3Algebra(universe)
        events = [
            Create(t),
            Create(sub),
            Create(sub.child("w")),
            Perform(sub.child("w"), 0),       # sub's write: x = 9
            ReleaseLock(sub.child("w"), "x"),
            Commit(sub),                      # sub committed to t: visible within t
            ReleaseLock(sub, "x"),            # lock now held by t
            Create(t.child("r")),
            Abort(t),                         # dooms the whole family
            LoseLock(t, "x"),                 # t's holding (with sub's write) discarded
            Perform(t.child("r"), 0),         # orphan read: principal is back to init!
        ]
        assert algebra.is_valid(events)
        report = orphan_view_report(algebra, events)
        assert report.orphan_performs == 1
        # The orphan saw 0, but its committed sibling's write (9) is
        # visible to it: a time-warped, inconsistent view.
        assert report.orphan_anomalies == 1
        assert report.anomalies[0].saw == 0
        assert report.anomalies[0].consistent_value == 9


class TestLivePerformsAlwaysConsistent:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_no_live_anomalies_at_any_level(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=3)
        for algebra_cls in (Level2Algebra, Level3Algebra, Level4Algebra):
            algebra = algebra_cls(scenario.universe)
            events = random_run(algebra, scenario, random.Random(seed))
            report = orphan_view_report(algebra, events)
            assert report.live_anomalies == 0

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_orphans_consistent_without_lose_lock(self, seed):
        """With lose-lock disabled (weight 0), level-3/4 orphans always see
        consistent views."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=3)
        config = RunConfig()
        config.weights["LoseLock"] = 0.0
        for algebra_cls in (Level3Algebra, Level4Algebra):
            algebra = algebra_cls(scenario.universe)
            events = random_run(algebra, scenario, random.Random(seed), config)
            events = [
                e for e in events
            ]
            report = orphan_view_report(algebra, events)
            assert report.orphans_consistent, report.anomalies
