"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core import Level2Algebra, Scenario, U, Universe, add, random_run, random_scenario, read

# Example budgets for property tests that don't pin their own: "ci" keeps
# the tier-1 wall clock sane, "nightly" digs deeper (the scheduled
# workflow exports HYPOTHESIS_PROFILE=nightly).  Tests that set an
# explicit ``max_examples`` are unaffected.
hypothesis_settings.register_profile("ci", deadline=None, max_examples=60)
hypothesis_settings.register_profile(
    "nightly", deadline=None, max_examples=400
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def bank_universe():
    """A small hand-built universe: two accounts and a transfer tree.

    U
    └── transfer (t)
        ├── debit  (access: acct_a, add -10)
        ├── credit (access: acct_b, add +10)
        └── audit  (subtransaction)
            ├── check_a (access: acct_a, read)
            └── check_b (access: acct_b, read)
    """
    universe = Universe()
    universe.define_object("acct_a", init=100)
    universe.define_object("acct_b", init=50)
    t = U.child("transfer")
    universe.declare_access(t.child("debit"), "acct_a", add(-10))
    universe.declare_access(t.child("credit"), "acct_b", add(10))
    audit = t.child("audit")
    universe.declare_access(audit.child("check_a"), "acct_a", read())
    universe.declare_access(audit.child("check_b"), "acct_b", read())
    return universe


@pytest.fixture
def bank_actions():
    t = U.child("transfer")
    audit = t.child("audit")
    return {
        "t": t,
        "debit": t.child("debit"),
        "credit": t.child("credit"),
        "audit": audit,
        "check_a": audit.child("check_a"),
        "check_b": audit.child("check_b"),
    }


@pytest.fixture
def bank_scenario(bank_universe, bank_actions):
    return Scenario(
        bank_universe, (bank_actions["t"], bank_actions["audit"])
    )


def make_level2_run(seed: int, **scenario_kwargs):
    """A (scenario, events, final AAT) triple from a seeded random walk."""
    rng = random.Random(seed)
    scenario = random_scenario(rng, **scenario_kwargs)
    algebra = Level2Algebra(scenario.universe)
    events = random_run(algebra, scenario, rng)
    return scenario, algebra, events
