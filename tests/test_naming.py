"""Unit tests for the action naming scheme (paper Section 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ActionName, U, lca_of

paths = st.lists(st.integers(min_value=0, max_value=5), max_size=6)


def name_of(path):
    return ActionName(tuple(path))


class TestBasics:
    def test_root_is_special(self):
        assert U.is_root
        assert U.depth == 0
        assert len(U) == 0
        assert repr(U) == "U"

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            U.parent()

    def test_root_has_no_label(self):
        with pytest.raises(ValueError):
            U.leaf_label()

    def test_child_and_parent_roundtrip(self):
        child = U.child(3).child("x")
        assert child.parent() == U.child(3)
        assert child.leaf_label() == "x"
        assert child.depth == 2

    def test_tuple_constructor(self):
        assert ActionName((1, 2)) == U.child(1).child(2)

    def test_rejects_bad_atoms(self):
        with pytest.raises(TypeError):
            ActionName((1.5,))

    def test_repr_shows_path(self):
        assert repr(U.child(1).child("op")) == "<1/op>"

    def test_equality_and_hash(self):
        a = U.child(1).child(2)
        b = ActionName((1, 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != U.child(1)
        assert a != "not-a-name"

    def test_ordering_mixes_ints_and_strings(self):
        names = [U.child("z"), U.child(10), U.child(2), U.child("a")]
        ordered = sorted(names)
        assert ordered == [U.child(2), U.child(10), U.child("a"), U.child("z")]


class TestAncestry:
    def test_ancestors_root_first(self):
        node = U.child(1).child(2)
        assert list(node.ancestors()) == [U, U.child(1), node]
        assert list(node.proper_ancestors()) == [U, U.child(1)]

    def test_ancestor_is_reflexive(self):
        node = U.child(1)
        assert node.is_ancestor_of(node)
        assert node.is_descendant_of(node)
        assert not node.is_proper_ancestor_of(node)

    def test_proper_ancestor(self):
        assert U.is_proper_ancestor_of(U.child(0))
        assert U.child(0).is_proper_ancestor_of(U.child(0).child(1))
        assert not U.child(0).is_proper_ancestor_of(U.child(1))

    def test_siblings(self):
        a, b = U.child(1).child(0), U.child(1).child(5)
        assert a.is_sibling_of(b)
        assert a.is_sibling_of(a)
        assert not a.is_sibling_of(U.child(2).child(0))
        assert not U.is_sibling_of(a)
        assert not a.is_sibling_of(U)

    def test_lca(self):
        a = U.child(1).child(2).child(3)
        b = U.child(1).child(4)
        assert a.lca(b) == U.child(1)
        assert a.lca(a) == a
        assert a.lca(U.child(9)) == U

    def test_lca_with_ancestor(self):
        a = U.child(1).child(2)
        assert a.lca(U.child(1)) == U.child(1)

    def test_lca_of_collection(self):
        names = [U.child(1).child(2), U.child(1).child(3), U.child(1)]
        assert lca_of(names) == U.child(1)
        with pytest.raises(ValueError):
            lca_of([])

    def test_ancestor_at_depth(self):
        node = U.child(1).child(2).child(3)
        assert node.ancestor_at_depth(0) == U
        assert node.ancestor_at_depth(2) == U.child(1).child(2)
        with pytest.raises(ValueError):
            node.ancestor_at_depth(4)

    def test_child_toward(self):
        anc = U.child(1)
        desc = U.child(1).child(2).child(3)
        assert anc.child_toward(desc) == U.child(1).child(2)
        with pytest.raises(ValueError):
            anc.child_toward(U.child(9))
        with pytest.raises(ValueError):
            anc.child_toward(anc)


class TestProperties:
    @given(paths, paths)
    def test_lca_is_commutative(self, p, q):
        a, b = name_of(p), name_of(q)
        assert a.lca(b) == b.lca(a)

    @given(paths, paths)
    def test_lca_is_common_ancestor(self, p, q):
        a, b = name_of(p), name_of(q)
        lca = a.lca(b)
        assert lca.is_ancestor_of(a)
        assert lca.is_ancestor_of(b)

    @given(paths, paths)
    def test_lca_is_least(self, p, q):
        a, b = name_of(p), name_of(q)
        lca = a.lca(b)
        # Any deeper common ancestor would contradict leastness.
        for anc in a.ancestors():
            if anc.is_ancestor_of(b):
                assert anc.is_ancestor_of(lca)

    @given(paths)
    def test_ancestors_count(self, p):
        node = name_of(p)
        assert len(list(node.ancestors())) == node.depth + 1

    @given(paths, paths)
    def test_ancestry_antisymmetry(self, p, q):
        a, b = name_of(p), name_of(q)
        if a.is_ancestor_of(b) and b.is_ancestor_of(a):
            assert a == b

    @given(paths)
    def test_sort_key_total_order(self, p):
        node = name_of(p)
        assert not node < node


class TestOrderingRegressions:
    def test_negative_ints_sort_numerically(self):
        # Regression: _sort_key once formatted ints as zero-padded
        # strings, which ordered "-1" before "-2" lexicographically.
        assert U.child(-2) < U.child(-1)
        assert U.child(-1) < U.child(0)
        labels = [3, -1, 0, -20, 2, -2]
        ordered = sorted(U.child(label) for label in labels)
        assert [n.leaf_label() for n in ordered] == sorted(labels)

    @given(st.integers(), st.integers())
    def test_int_labels_order_like_ints(self, a, b):
        if a < b:
            assert U.child(a) < U.child(b)
        elif a > b:
            assert U.child(b) < U.child(a)
        else:
            assert U.child(a) == U.child(b)


# Paths with negative ints and strings, to exercise interning + ordering
# over the full atom domain.
mixed_paths = st.lists(
    st.one_of(
        st.integers(min_value=-3, max_value=3),
        st.sampled_from(["a", "b", "xyz"]),
    ),
    max_size=5,
)


class TestInterning:
    """Interning is invisible: canonical and fresh instances agree on
    every observable relation."""

    def test_make_returns_same_instance(self):
        a = ActionName.make((1, "x"))
        b = ActionName.make((1, "x"))
        assert a is b

    def test_intern_is_idempotent(self):
        fresh = ActionName((7, "q"))
        canon = fresh.intern()
        assert canon.intern() is canon
        assert canon == fresh

    def test_derived_names_are_canonical(self):
        node = ActionName.make((1, 2, 3))
        assert node.parent() is ActionName.make((1, 2))
        assert node.ancestor_at_depth(1) is ActionName.make((1,))
        assert node.lca(ActionName.make((1, 9))) is ActionName.make((1,))

    def test_child_does_not_pollute_table(self):
        # Unique per-operation labels must not become table insertions.
        from repro.core.naming import _INTERNED

        base = ActionName.make((4,))
        fresh = base.child("only-used-once-xyzzy")
        assert fresh.path not in _INTERNED
        assert fresh.parent() == base

    @given(mixed_paths, mixed_paths)
    def test_interned_and_fresh_agree(self, p, q):
        fresh_a, fresh_b = name_of(p), name_of(q)
        canon_a = ActionName.make(tuple(p))
        canon_b = ActionName.make(tuple(q))
        assert (fresh_a == fresh_b) == (canon_a == canon_b)
        assert hash(fresh_a) == hash(canon_a)
        assert (fresh_a < fresh_b) == (canon_a < canon_b)
        assert fresh_a.is_ancestor_of(fresh_b) == canon_a.is_ancestor_of(
            canon_b
        )
        assert fresh_a.is_proper_ancestor_of(
            fresh_b
        ) == canon_a.is_proper_ancestor_of(canon_b)
        assert fresh_a.lca(fresh_b) == canon_a.lca(canon_b)
        # Mixed pairs agree too (fresh vs canonical).
        assert (fresh_a == canon_b) == (canon_a == fresh_b)
        assert fresh_a.lca(canon_b) == canon_a.lca(fresh_b)

    @given(mixed_paths)
    def test_parent_cache_matches_slice(self, p):
        if not p:
            return
        fresh = name_of(p)
        canon = ActionName.make(tuple(p))
        expected = ActionName(tuple(p[:-1]))
        assert fresh.parent() == expected
        assert canon.parent() == expected
        # repeated calls are stable
        assert fresh.parent() is fresh.parent()
