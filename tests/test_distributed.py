"""The distributed simulation: policies, completion, message accounting,
stall breaking, and validity against the formal chain."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    HomeAssignment,
    Level1Algebra,
    Level4Algebra,
    U,
    Universe,
    check_local_mapping_lockstep,
    local_mapping_5_to_4,
    project_run,
    write,
)
from repro.core.explorer import Scenario
from repro.distributed import (
    BROADCAST,
    GOSSIP,
    TARGETED,
    DistributedMossSystem,
    PolicyConfig,
    RunReport,
    interested_nodes,
    random_distributed_scenario,
)


def small_setting(seed=42, nodes=3, locality=0.5):
    rng = random.Random(seed)
    return random_distributed_scenario(
        rng, node_count=nodes, locality=locality, toplevel=3
    )


class TestPolicyConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PolicyConfig(kind="smoke-signals")

    def test_interested_nodes_targeted(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1 = U.child(1)
        access = t1.child("w")
        universe.declare_access(access, "x", write(1))
        homes = HomeAssignment(
            universe, 3, object_homes={"x": 2}, action_homes={t1: 1}
        )
        scenario = Scenario(universe, (t1,))
        # The access's active status matters at the object home (node 2).
        assert interested_nodes(access, "active", 1, scenario, homes) == {2}
        # A commit of t1 matters at node 2 (its subtree touches x).
        assert 2 in interested_nodes(t1, "committed", 1, scenario, homes)
        # The originating node itself is excluded.
        assert 1 not in interested_nodes(t1, "committed", 1, scenario, homes)


class TestRuns:
    @pytest.mark.parametrize("policy", [BROADCAST, TARGETED, GOSSIP])
    def test_completes_under_each_policy(self, policy):
        scenario, homes = small_setting()
        system = DistributedMossSystem(
            scenario, homes, PolicyConfig(kind=policy), seed=1
        )
        report, events = system.run()
        assert report.completed
        assert report.performed > 0
        if policy == BROADCAST:
            assert report.messages > 0  # broadcast always chatters
        assert len(events) == report.steps

    def test_runs_are_valid_level5_computations(self):
        scenario, homes = small_setting(seed=7)
        system = DistributedMossSystem(scenario, homes, seed=2)
        report, events = system.run()
        # Validity was enforced step by step; re-check the whole chain.
        check_local_mapping_lockstep(
            system.algebra,
            Level4Algebra(scenario.universe),
            local_mapping_5_to_4(scenario.universe, homes),
            events,
        )
        assert Level1Algebra(scenario.universe).is_valid(project_run(events, 1))

    def test_targeted_cheaper_than_broadcast(self):
        scenario, homes = small_setting(seed=9, nodes=4)
        broadcast = DistributedMossSystem(
            scenario, homes, PolicyConfig(kind=BROADCAST), seed=3
        )
        b_report, _ = broadcast.run()
        targeted = DistributedMossSystem(
            scenario, homes, PolicyConfig(kind=TARGETED), seed=3
        )
        t_report, _ = targeted.run()
        assert t_report.completed and b_report.completed
        assert t_report.messages <= b_report.messages

    def test_single_node_needs_no_messages(self):
        scenario, homes = small_setting(seed=11, nodes=1)
        system = DistributedMossSystem(
            scenario, homes, PolicyConfig(kind=TARGETED), seed=4
        )
        report, _ = system.run()
        assert report.completed
        assert report.messages == 0

    def test_latency_delays_but_preserves_completion(self):
        scenario, homes = small_setting(seed=13)
        fast = DistributedMossSystem(scenario, homes, seed=5, latency_rounds=1)
        slow = DistributedMossSystem(scenario, homes, seed=5, latency_rounds=5)
        fast_report, _ = fast.run()
        slow_report, _ = slow.run()
        assert fast_report.completed and slow_report.completed

    def test_report_as_row(self):
        report = RunReport(node_count=2, steps=5)
        row = report.as_row()
        assert row["node_count"] == 2
        assert row["steps"] == 5


class TestStallBreaking:
    def test_conflicting_toplevels_resolved_by_preemption(self):
        """Two top-level transactions whose accesses interleave on the
        same objects can lock-stall; the scheduler preempts an ancestor
        and completes."""
        universe = Universe()
        universe.define_object("x", init=0)
        universe.define_object("y", init=0)
        t1, t2 = U.child(1), U.child(2)
        # Each top-level has an inner subtransaction touching both objects
        # so lock retention spans the run.
        s1, s2 = t1.child(0), t2.child(0)
        universe.declare_access(s1.child("wx"), "x", write(1))
        universe.declare_access(s1.child("wy"), "y", write(1))
        universe.declare_access(s2.child("wy"), "y", write(2))
        universe.declare_access(s2.child("wx"), "x", write(2))
        homes = HomeAssignment(
            universe,
            2,
            object_homes={"x": 0, "y": 1},
            action_homes={t1: 0, s1: 0, t2: 1, s2: 1},
        )
        scenario = Scenario(universe, (t1, s1, t2, s2))
        system = DistributedMossSystem(scenario, homes, seed=6)
        report, events = system.run()
        # The run must terminate and stay valid; preemption may or may not
        # have been needed depending on scheduling order.
        assert report.steps < system.max_steps
        assert Level1Algebra(universe).is_valid(project_run(events, 1))


class TestScenarioGeneration:
    def test_locality_extremes(self):
        rng = random.Random(3)
        scenario, homes = random_distributed_scenario(
            rng, node_count=4, locality=1.0
        )
        universe = scenario.universe
        # With locality 1.0, every access touches an object homed where
        # its *enclosing subtransaction* lives (subtrees may migrate to a
        # different node than the top-level).
        for access in universe.accesses:
            assert homes.home_of_object(universe.object_of(access)) == (
                homes.home_of_action(access.parent())
            )

    def test_deterministic(self):
        a_scenario, _a = random_distributed_scenario(random.Random(5), 3)
        b_scenario, _b = random_distributed_scenario(random.Random(5), 3)
        assert a_scenario.all_actions == b_scenario.all_actions
