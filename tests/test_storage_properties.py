"""Hypothesis property tests for the engine's storage and lock primitives:
version stacks and Moss lock tables under random legal op sequences."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naming import U, ActionName
from repro.engine import READ, WRITE, ObjectLocks, VersionStack


def chain_of(depth: int) -> List[ActionName]:
    """U.child(0), U.child(0).child(0), ... — one ancestor line."""
    chain = []
    node = U
    for _ in range(depth):
        node = node.child(0)
        chain.append(node)
    return chain


class TestVersionStackProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 99), st.booleans()),
            max_size=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_nested_write_then_resolve(self, script):
        """Random nesting scripts: each step picks a depth, writes there,
        then either commits the chain up or discards it.  The stack must
        always mirror a straightforward recursive model."""
        stack = VersionStack(0)
        expected_base = 0
        for depth, value, commit in script:
            chain = chain_of(depth)
            # deepest writes
            for node in chain:
                stack.ensure_version(node)
            stack.set_value(chain[-1], value)
            if commit:
                for node in reversed(chain):
                    stack.commit_to_parent(node)
                expected_base = value
            else:
                for node in reversed(chain):
                    stack.discard(node)
            # After resolution the stack is just the base entry.
            assert len(stack.entries) == 1
            assert stack.owner == U
            assert stack.current == expected_base

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_abort_always_restores(self, values):
        stack = VersionStack(7)
        txn = U.child(1)
        stack.ensure_version(txn)
        for value in values:
            stack.set_value(txn, value)
        assert stack.current == values[-1]
        stack.discard(txn)
        assert stack.current == 7

    @given(st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_partial_commit_keeps_owner_chain(self, depth):
        """Committing only the deepest k levels leaves the stack owned by
        the right intermediate ancestor."""
        stack = VersionStack(0)
        chain = chain_of(depth)
        for node in chain:
            stack.ensure_version(node)
        stack.set_value(chain[-1], 42)
        stack.commit_to_parent(chain[-1])
        expected_owner = chain[-2] if depth >= 2 else U
        assert stack.owner == expected_owner
        assert stack.current == 42


class TestVersionStackRoundTrips:
    """Durability-facing round trips: commit-merge vs abort-pop under
    random nested schedules, driven against an independent shadow model
    (visible-value bookkeeping, not a re-implementation of the stack)."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "write", "commit", "abort"]),
                st.integers(0, 99),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_commit_merge_vs_abort_pop(self, script):
        """At every step: an abort restores exactly the value that was
        visible when the aborting transaction pushed its version; a commit
        makes the child's value the parent's.  ``saved[owner]`` records
        what each live owner would restore — the paper's value map."""
        stack = VersionStack(0)
        # What was on top (visible) when each live owner pushed.
        saved = {}
        chain = [U]  # live owner chain, bottom to top
        for action, value in script:
            top = chain[-1]
            if action == "push":
                node = top.child(len(chain))
                saved[node] = stack.current
                stack.ensure_version(node)
                chain.append(node)
            elif action == "write":
                if top == U:
                    continue  # only transactions write through the engine
                stack.set_value(top, value)
            elif action == "commit":
                if top == U:
                    continue
                committed = stack.current
                stack.commit_to_parent(top)
                chain.pop()
                del saved[top]
                # The parent now sees the child's value...
                assert stack.current == committed
            else:  # abort
                if top == U:
                    continue
                stack.discard(top)
                chain.pop()
                # ...whereas an abort restores the pre-push value exactly.
                assert stack.current == saved.pop(top)
        # Resolve everything: aborting the whole live chain walks the
        # saved values back down to the oldest still-live restore point.
        while len(chain) > 1:
            top = chain.pop()
            stack.discard(top)
            assert stack.current == saved.pop(top)
        assert stack.owner == U

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "write", "commit", "abort"]),
                st.integers(0, 99),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_owner_chain_invariant(self, script):
        """The stack's owners always form a strict ancestor chain with a
        U-owned base — the structural invariant recovery's snapshot and
        the WAL's ``version_of`` read both lean on."""
        stack = VersionStack(5)
        chain = [U]
        for action, value in script:
            top = chain[-1]
            if action == "push":
                node = top.child(len(chain))
                stack.ensure_version(node)
                chain.append(node)
            elif action == "write" and top != U:
                stack.set_value(top, value)
            elif action == "commit" and top != U:
                stack.commit_to_parent(top)
                chain.pop()
            elif action == "abort" and top != U:
                stack.discard(top)
                chain.pop()
            owners = [owner for owner, _value in stack.entries]
            assert owners[0] == U
            assert len(set(owners)) == len(owners)
            for below, above in zip(owners, owners[1:]):
                assert below.is_proper_ancestor_of(above)
            # version_of agrees with the entries it indexes.
            for owner, value_ in stack.entries:
                assert stack.version_of(owner) == (owner, value_)
            assert stack.version_of(U.child("nope")) is None


class TestObjectLocksProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.sampled_from([READ, WRITE])),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_grant_is_monotone_in_mode(self, grants):
        """Granting never downgrades: once WRITE, always WRITE."""
        locks = ObjectLocks()
        strongest = {}
        for txn_index, mode in grants:
            txn = U.child(txn_index)
            locks.grant(txn, mode)
            if strongest.get(txn) != WRITE:
                strongest[txn] = (
                    WRITE if mode == WRITE else strongest.get(txn, READ)
                )
        for txn, mode in strongest.items():
            assert locks.mode_of(txn) == mode

    @given(st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_conflict_symmetry_for_writes(self, i, j):
        """Between two distinct top-levels, write-write conflicts are
        symmetric."""
        a, b = U.child(i), U.child(j)
        locks_a = ObjectLocks()
        locks_a.grant(a, WRITE)
        locks_b = ObjectLocks()
        locks_b.grant(b, WRITE)
        conflict_ab = bool(locks_a.conflicts_with(b, WRITE))
        conflict_ba = bool(locks_b.conflicts_with(a, WRITE))
        assert conflict_ab == conflict_ba == (a != b)

    @given(st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_inheritance_chain_reaches_top(self, depth):
        """A lock inherited level by level ends at the top-level holder
        and never blocks descendants along the way."""
        locks = ObjectLocks()
        chain = chain_of(depth)
        locks.grant(chain[-1], WRITE)
        for node in reversed(chain[1:]):
            # Holders are always ancestors of the original acquirer.
            assert locks.conflicts_with(chain[-1], WRITE) == []
            locks.inherit(node)
        assert locks.mode_of(chain[0]) == WRITE
        # A different top-level now conflicts.
        assert locks.conflicts_with(U.child(9), WRITE) == [chain[0]]

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.booleans()), max_size=15)
    )
    @settings(max_examples=50, deadline=None)
    def test_readers_never_block_each_other(self, ops):
        locks = ObjectLocks()
        for txn_index, _unused in ops:
            locks.grant(U.child(txn_index), READ)
        for txn_index, _unused in ops:
            assert locks.conflicts_with(U.child(txn_index + 10), READ) == []
