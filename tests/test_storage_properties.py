"""Hypothesis property tests for the engine's storage and lock primitives:
version stacks and Moss lock tables under random legal op sequences."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naming import U, ActionName
from repro.engine import READ, WRITE, ObjectLocks, VersionStack


def chain_of(depth: int) -> List[ActionName]:
    """U.child(0), U.child(0).child(0), ... — one ancestor line."""
    chain = []
    node = U
    for _ in range(depth):
        node = node.child(0)
        chain.append(node)
    return chain


class TestVersionStackProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 99), st.booleans()),
            max_size=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_nested_write_then_resolve(self, script):
        """Random nesting scripts: each step picks a depth, writes there,
        then either commits the chain up or discards it.  The stack must
        always mirror a straightforward recursive model."""
        stack = VersionStack(0)
        expected_base = 0
        for depth, value, commit in script:
            chain = chain_of(depth)
            # deepest writes
            for node in chain:
                stack.ensure_version(node)
            stack.set_value(chain[-1], value)
            if commit:
                for node in reversed(chain):
                    stack.commit_to_parent(node)
                expected_base = value
            else:
                for node in reversed(chain):
                    stack.discard(node)
            # After resolution the stack is just the base entry.
            assert len(stack.entries) == 1
            assert stack.owner == U
            assert stack.current == expected_base

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_abort_always_restores(self, values):
        stack = VersionStack(7)
        txn = U.child(1)
        stack.ensure_version(txn)
        for value in values:
            stack.set_value(txn, value)
        assert stack.current == values[-1]
        stack.discard(txn)
        assert stack.current == 7

    @given(st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_partial_commit_keeps_owner_chain(self, depth):
        """Committing only the deepest k levels leaves the stack owned by
        the right intermediate ancestor."""
        stack = VersionStack(0)
        chain = chain_of(depth)
        for node in chain:
            stack.ensure_version(node)
        stack.set_value(chain[-1], 42)
        stack.commit_to_parent(chain[-1])
        expected_owner = chain[-2] if depth >= 2 else U
        assert stack.owner == expected_owner
        assert stack.current == 42


class TestObjectLocksProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.sampled_from([READ, WRITE])),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_grant_is_monotone_in_mode(self, grants):
        """Granting never downgrades: once WRITE, always WRITE."""
        locks = ObjectLocks()
        strongest = {}
        for txn_index, mode in grants:
            txn = U.child(txn_index)
            locks.grant(txn, mode)
            if strongest.get(txn) != WRITE:
                strongest[txn] = (
                    WRITE if mode == WRITE else strongest.get(txn, READ)
                )
        for txn, mode in strongest.items():
            assert locks.mode_of(txn) == mode

    @given(st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_conflict_symmetry_for_writes(self, i, j):
        """Between two distinct top-levels, write-write conflicts are
        symmetric."""
        a, b = U.child(i), U.child(j)
        locks_a = ObjectLocks()
        locks_a.grant(a, WRITE)
        locks_b = ObjectLocks()
        locks_b.grant(b, WRITE)
        conflict_ab = bool(locks_a.conflicts_with(b, WRITE))
        conflict_ba = bool(locks_b.conflicts_with(a, WRITE))
        assert conflict_ab == conflict_ba == (a != b)

    @given(st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_inheritance_chain_reaches_top(self, depth):
        """A lock inherited level by level ends at the top-level holder
        and never blocks descendants along the way."""
        locks = ObjectLocks()
        chain = chain_of(depth)
        locks.grant(chain[-1], WRITE)
        for node in reversed(chain[1:]):
            # Holders are always ancestors of the original acquirer.
            assert locks.conflicts_with(chain[-1], WRITE) == []
            locks.inherit(node)
        assert locks.mode_of(chain[0]) == WRITE
        # A different top-level now conflicts.
        assert locks.conflicts_with(U.child(9), WRITE) == [chain[0]]

    @given(
        st.lists(st.tuples(st.integers(0, 4), st.booleans()), max_size=15)
    )
    @settings(max_examples=50, deadline=None)
    def test_readers_never_block_each_other(self, ops):
        locks = ObjectLocks()
        for txn_index, _unused in ops:
            locks.grant(U.child(txn_index), READ)
        for txn_index, _unused in ops:
            assert locks.conflicts_with(U.child(txn_index + 10), READ) == []
