"""Stress runs: heavier concurrent workloads across engine configurations,
each finished with quiescence assertions and the serializability oracle."""

from __future__ import annotations

import threading

import pytest

from repro.checker import check_engine
from repro.engine import EngineConfig, NestedTransactionDB, TransactionAborted
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values

CONFIGS = [
    pytest.param(EngineConfig(), id="rw-default"),
    pytest.param(EngineConfig(single_mode=True), id="single-mode"),
    pytest.param(EngineConfig(lazy_lock_cleanup=True), id="lazy-cleanup"),
    pytest.param(EngineConfig(deadlock_policy="requester"), id="requester-victim"),
    pytest.param(EngineConfig(deadlock_policy="youngest"), id="youngest-victim"),
]


@pytest.mark.parametrize("db_config", CONFIGS)
def test_stress_workload_certifies_and_quiesces(db_config):
    db = NestedTransactionDB(initial_values(16), config=db_config)
    cfg = WorkloadConfig(
        objects=16,
        theta=0.9,
        shape="mixed",
        ops_per_transaction=10,
        programs=60,
        seed=99,
    )
    report = execute(
        db,
        WorkloadGenerator(cfg).programs(),
        threads=6,
        failure_prob=0.2,
        seed=99,
    )
    assert report.committed_programs == 60
    assert check_engine(db).ok
    db.assert_quiescent()


def test_quiescence_catches_active_transaction():
    db = NestedTransactionDB({"a": 0})
    txn = db.begin_transaction()
    with pytest.raises(AssertionError, match="active transactions"):
        db.assert_quiescent()
    txn.abort()
    db.assert_quiescent()


def test_quiescence_after_aborts_and_commits():
    db = NestedTransactionDB({"a": 0, "b": 0})
    for i in range(10):
        txn = db.begin_transaction()
        txn.write("a", i)
        child = txn.begin_subtransaction()
        child.write("b", i)
        if i % 2:
            child.abort()
            txn.commit()
        else:
            child.commit()
            txn.abort()
    db.assert_quiescent()
    # Odd rounds committed a only; even rounds aborted everything.
    assert db.snapshot() == {"a": 9, "b": 0}


def test_hammer_same_object_across_depths():
    """Many threads, one object, varying nesting depth: the adversarial
    case for lock inheritance."""
    db = NestedTransactionDB({"x": 0})

    def worker(depth):
        for _ in range(15):
            def body(txn):
                scope = txn
                for _level in range(depth):
                    child = scope.begin_subtransaction()
                    scope = child
                scope.write("x", scope.read("x") + 1)
                # commit the chain bottom-up
                while scope is not txn:
                    parent = scope.parent
                    scope.commit()
                    scope = parent
            db.run_transaction(body)

    threads = [
        threading.Thread(target=worker, args=(depth,), daemon=True)
        for depth in (0, 1, 2, 3, 0, 2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert db.snapshot()["x"] == 6 * 15
    assert check_engine(db).ok
    db.assert_quiescent()


def test_orphan_storm():
    """Abort parents while children race: orphans must never corrupt the
    store and everything must quiesce."""
    db = NestedTransactionDB({"a": 0})
    stop = threading.Event()
    parents = []
    latch = threading.Lock()

    def spawner():
        for _ in range(30):
            txn = db.begin_transaction()
            with latch:
                parents.append(txn)
            for _ in range(3):
                child = txn.begin_subtransaction()
                try:
                    child.write("a", child.read("a") + 1)
                    child.commit()
                except TransactionAborted:
                    child.abort()
            try:
                txn.commit()
            except TransactionAborted:
                txn.abort()

    def reaper():
        while not stop.is_set():
            with latch:
                victim = parents[-1] if parents else None
            if victim is not None and victim.status == "active":
                victim.abort()

    spawn_threads = [threading.Thread(target=spawner, daemon=True) for _ in range(3)]
    reap_thread = threading.Thread(target=reaper, daemon=True)
    for thread in spawn_threads:
        thread.start()
    reap_thread.start()
    for thread in spawn_threads:
        thread.join()
    stop.set()
    reap_thread.join(5)
    # Whatever survived, it must be serializable and fully cleaned up.
    assert check_engine(db).ok
    db.assert_quiescent()
    assert db.snapshot()["a"] >= 0
