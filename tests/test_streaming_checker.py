"""The streaming certifier: differential against the offline oracle,
injected-violation detection, bounded-memory windowing, out-of-order
tolerance, and the live engine wiring (``certify="streaming"``).

The offline oracle (``check_trace_serializable``) is the ground truth:
it holds the whole trace and replays the paper's algebra post hoc.  The
streaming checker must reach the *same verdict* incrementally, record by
record, while retiring window state the moment concurrency allows — so
the differential tests below compare the two on randomized traces, on
deliberately corrupted traces, and on real concurrent engine runs.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import subprocess
import sys
from collections import deque
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import (
    CYCLE,
    FAMILY_CYCLE,
    VERSION,
    ReorderBuffer,
    RetirementClock,
    StreamingCertifier,
    StreamingViolation,
    certify_records,
    check_engine,
    check_trace_serializable,
)
from repro.core import U
from repro.engine import EngineConfig, NestedTransactionDB, TraceBusBridge
from repro.engine.trace import (
    ABORT,
    COMMIT,
    CREATE,
    PERFORM,
    TraceRecord,
)
from repro.obs import JsonlFileSink
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values


def perform(txn, index, obj, kind, seen, arg=None):
    access = txn.child("%s%d" % ("r" if kind == "read" else "w", index))
    return TraceRecord(PERFORM, txn, access, obj, kind, seen, arg)


def counter_trace(tops, objects):
    """A serial, version-compatible run: each top reads then increments
    one object.  Certifies clean by construction."""
    values = {obj: 0 for obj in objects}
    records = []
    for i in range(tops):
        top = U.child(str(i))
        obj = objects[i % len(objects)]
        records.append(TraceRecord(CREATE, top))
        records.append(perform(top, 0, obj, "read", values[obj]))
        records.append(perform(top, 1, obj, "write", values[obj], values[obj] + 1))
        values[obj] += 1
        records.append(TraceRecord(COMMIT, top))
    return records


# ---------------------------------------------------------------------------
# Differential: randomized protocol-valid traces, streaming vs offline
# ---------------------------------------------------------------------------

OBJECTS = ("x", "y", "z")
INITIAL = {obj: 0 for obj in OBJECTS}


@st.composite
def random_trace(draw):
    """A protocol-valid trace of 1-4 tops (flat accesses and depth-2
    subtransactions, commits and aborts), with *arbitrary* seen/arg
    values — most draws are version-incompatible, some close cycles, a
    few certify; the verdict itself is the property under test."""
    tops = draw(st.integers(min_value=1, max_value=4))
    per_top = []
    for index in range(tops):
        top = U.child(str(index))
        events = [TraceRecord(CREATE, top)]
        counter = itertools.count()
        for child in range(draw(st.integers(min_value=1, max_value=3))):
            if draw(st.booleans()):
                sub = top.child("s%d" % child)
                events.append(TraceRecord(CREATE, sub))
                for _ in range(draw(st.integers(min_value=1, max_value=2))):
                    events.append(_random_perform(draw, sub, counter))
                events.append(
                    TraceRecord(draw(st.sampled_from((COMMIT, ABORT))), sub)
                )
            else:
                events.append(_random_perform(draw, top, counter))
        events.append(TraceRecord(draw(st.sampled_from((COMMIT, ABORT))), top))
        per_top.append(deque(events))
    lanes = [i for i, events in enumerate(per_top) for _ in events]
    order = draw(st.permutations(lanes))
    return [per_top[lane].popleft() for lane in order]


def _random_perform(draw, txn, counter):
    obj = draw(st.sampled_from(OBJECTS))
    kind = draw(st.sampled_from(("read", "write")))
    seen = draw(st.integers(min_value=0, max_value=2))
    arg = draw(st.integers(min_value=0, max_value=2)) if kind == "write" else None
    return perform(txn, next(counter), obj, kind, seen, arg)


class TestDifferentialRandomTraces:
    @given(random_trace())
    def test_verdict_matches_offline_oracle(self, records):
        streaming = certify_records(records, INITIAL)
        offline = check_trace_serializable(records, INITIAL, strict=False)
        assert streaming.ok == offline.ok, (
            streaming.violations,
            offline.failure,
        )
        assert streaming.permanent_accesses == offline.permanent_datasteps
        assert streaming.records == len(records)

    @given(
        st.integers(min_value=1, max_value=12),
        st.data(),
    )
    def test_corrupted_counter_trace_is_flagged(self, tops, data):
        """Mutation property: corrupt one permanent access's observed
        value in a trace that certifies clean — both checkers must flag
        it, and they must keep agreeing."""
        records = counter_trace(tops, OBJECTS)
        assert certify_records(records, INITIAL).ok

        performs = [i for i, r in enumerate(records) if r.op == PERFORM]
        index = data.draw(st.sampled_from(performs))
        delta = data.draw(st.integers(min_value=1, max_value=3))
        mutated = list(records)
        mutated[index] = replace(
            mutated[index], seen=mutated[index].seen + delta
        )

        streaming = certify_records(mutated, INITIAL)
        offline = check_trace_serializable(mutated, INITIAL, strict=False)
        assert not streaming.ok
        assert not offline.ok
        assert any(v.kind == VERSION for v in streaming.violations)


class TestInjectedViolations:
    def test_write_skew_cycle(self):
        """Classic write skew: version-compatible but not serializable —
        the cycle must be flagged the moment its closing edge appears."""
        t1, t2 = U.child("1"), U.child("2")
        records = [
            TraceRecord(CREATE, t1),
            TraceRecord(CREATE, t2),
            perform(t1, 0, "x", "read", 0),
            perform(t2, 0, "y", "read", 0),
            perform(t1, 1, "y", "write", 0, 1),
            perform(t2, 1, "x", "write", 0, 1),
            TraceRecord(COMMIT, t1),
            TraceRecord(COMMIT, t2),
        ]
        report = certify_records(records, {"x": 0, "y": 0})
        assert not report.ok
        assert any(v.kind == CYCLE for v in report.violations)
        assert not check_trace_serializable(records, {"x": 0, "y": 0}, strict=False).ok

    def test_version_incompatibility(self):
        t = U.child("0")
        records = [
            TraceRecord(CREATE, t),
            perform(t, 0, "x", "read", 41),  # x starts at 0
            TraceRecord(COMMIT, t),
        ]
        report = certify_records(records, {"x": 0})
        assert not report.ok
        assert report.violations[0].kind == VERSION
        assert report.violations[0].obj == "x"

    def test_nested_family_cycle(self):
        """Two committed siblings inside one top conflicting in opposite
        orders on two objects: serializable at top level, cyclic inside
        the family — flagged at the top's commit."""
        top = U.child("0")
        a, b = top.child("s0"), top.child("s1")
        records = [
            TraceRecord(CREATE, top),
            TraceRecord(CREATE, a),
            TraceRecord(CREATE, b),
            perform(a, 0, "x", "write", 0, 1),
            perform(b, 0, "x", "write", 1, 2),
            perform(b, 1, "y", "write", 0, 1),
            perform(a, 1, "y", "write", 1, 2),
            TraceRecord(COMMIT, a),
            TraceRecord(COMMIT, b),
            TraceRecord(COMMIT, top),
        ]
        report = certify_records(records, {"x": 0, "y": 0})
        assert not report.ok
        assert any(v.kind == FAMILY_CYCLE for v in report.violations)
        assert not check_trace_serializable(
            records, {"x": 0, "y": 0}, strict=False
        ).ok

    def test_aborted_work_is_not_flagged(self):
        """An aborted top may have seen anything; it never becomes
        permanent, so the certifier must not charge it."""
        t1, t2 = U.child("1"), U.child("2")
        records = [
            TraceRecord(CREATE, t1),
            perform(t1, 0, "x", "read", 999),
            TraceRecord(ABORT, t1),
            TraceRecord(CREATE, t2),
            perform(t2, 0, "x", "read", 0),
            TraceRecord(COMMIT, t2),
        ]
        report = certify_records(records, {"x": 0})
        assert report.ok
        assert report.permanent_accesses == 1
        assert report.dropped_accesses == 1


# ---------------------------------------------------------------------------
# Bounded memory: the window tracks concurrency, not run length
# ---------------------------------------------------------------------------


class TestBoundedWindow:
    def test_serial_run_window_is_constant(self):
        report = certify_records(counter_trace(200, OBJECTS), INITIAL)
        assert report.ok
        assert report.stats["max_live_tops"] == 1
        assert report.stats["retired_tops"] == 200
        assert report.stats["max_applied_accesses"] <= 2
        assert report.stats["live_tops"] == 0
        assert report.stats["applied_accesses"] == 0

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=20)
    def test_batched_run_window_tracks_batch_width(self, width, batches):
        """Tops run in batches of ``width``: all begin, all commit, next
        batch.  The live window must never exceed the batch width however
        many batches run, and every top must eventually retire."""
        values = {obj: 0 for obj in OBJECTS}
        records = []
        for batch in range(batches):
            tops = [U.child(str(batch * width + i)) for i in range(width)]
            for top in tops:
                records.append(TraceRecord(CREATE, top))
            for i, top in enumerate(tops):
                obj = OBJECTS[i % len(OBJECTS)]
                records.append(perform(top, 0, obj, "read", values[obj]))
            for top in tops:
                records.append(TraceRecord(COMMIT, top))
        report = certify_records(records, INITIAL)
        assert report.ok
        assert report.stats["max_live_tops"] <= width
        assert report.stats["retired_tops"] == width * batches
        assert report.stats["live_tops"] == 0
        assert report.stats["graph_edges"] == 0


# ---------------------------------------------------------------------------
# Out-of-order publication tolerance
# ---------------------------------------------------------------------------


class TestReorderTolerance:
    @given(st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_shuffled_feed_matches_in_order_feed(self, rng):
        """Publication order is not seq order (the recorder publishes off
        the critical path); any permutation of a seq-stamped trace must
        certify identically."""
        records = [
            replace(record, seq=i)
            for i, record in enumerate(counter_trace(12, OBJECTS))
        ]
        in_order = certify_records(records, INITIAL)
        shuffled = list(records)
        rng.shuffle(shuffled)
        out_of_order = certify_records(shuffled, INITIAL)
        assert out_of_order.ok == in_order.ok is True
        assert (
            out_of_order.permanent_accesses == in_order.permanent_accesses
        )
        assert out_of_order.stats["retired_tops"] == in_order.stats["retired_tops"]

    def test_shuffled_corrupt_trace_still_flagged(self):
        records = [
            replace(record, seq=i)
            for i, record in enumerate(counter_trace(8, OBJECTS))
        ]
        performs = [i for i, r in enumerate(records) if r.op == PERFORM]
        records[performs[5]] = replace(
            records[performs[5]], seen=records[performs[5]].seen + 2
        )
        reversed_feed = certify_records(list(reversed(records)), INITIAL)
        assert not reversed_feed.ok
        assert any(v.kind == VERSION for v in reversed_feed.violations)


class TestReorderBuffer:
    def test_contiguous_release(self):
        buffer = ReorderBuffer()
        assert buffer.push(1, "b") == []
        assert buffer.push(2, "c") == []
        assert buffer.push(0, "a") == ["a", "b", "c"]
        assert buffer.buffered_high_water == 3  # counted before release

    def test_seqless_items_pass_through(self):
        buffer = ReorderBuffer()
        assert buffer.push(None, "x") == ["x"]
        assert buffer.push(0, "a") == ["a"]

    def test_drain_flushes_gap(self):
        buffer = ReorderBuffer()
        buffer.push(2, "c")
        buffer.push(5, "f")
        assert buffer.drain() == ["c", "f"]
        assert buffer.drain() == []


class TestRetirementClock:
    def test_watermark_and_retirement(self):
        clock = RetirementClock()
        clock.begin("a", 0)
        clock.begin("b", 1)
        assert clock.watermark == 0
        clock.resolve("a", 2)
        # b (begun at 1, unresolved) holds the watermark below a's
        # resolution, so a cannot retire yet.
        assert clock.watermark == 1
        assert list(clock.retire_ready()) == []
        clock.begin("c", 3)
        clock.resolve("b", 4)
        assert clock.watermark == 3
        assert list(clock.retire_ready()) == ["a"]
        clock.resolve("c", 5)
        assert clock.watermark is None
        assert list(clock.retire_ready()) == ["b", "c"]
        assert clock.live_count() == 0
        assert clock.retired == 3


# ---------------------------------------------------------------------------
# Live engine wiring
# ---------------------------------------------------------------------------


def run_workload(db, seed=11, programs=30, failure_prob=0.1):
    cfg = WorkloadConfig(
        objects=16,
        theta=0.7,
        shape="mixed",
        ops_per_transaction=6,
        programs=programs,
        seed=seed,
    )
    return execute(
        db,
        WorkloadGenerator(cfg).programs(),
        threads=4,
        failure_prob=failure_prob,
        seed=seed,
    )


class TestLiveEngineWiring:
    @pytest.mark.parametrize("latch_mode", ["global", "striped"])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_live_certifier_agrees_with_oracle(self, latch_mode, seed):
        db = NestedTransactionDB(initial_values(16), config=EngineConfig(latch_mode=latch_mode, certify="streaming"))
        run_workload(db, seed=seed)
        db.assert_certified()  # no violations while live
        streaming = db.certifier.finish()
        offline = check_engine(db)
        assert streaming.ok and offline.ok
        assert streaming.permanent_accesses == offline.permanent_datasteps
        assert streaming.records == len(db.trace.records)
        assert db.trace.listener_errors == 0
        # Quiescent stream: everything drained and retired.
        assert streaming.stats["live_tops"] == 0
        assert streaming.stats["pending_accesses"] == 0

    def test_finish_is_idempotent(self):
        db = NestedTransactionDB(initial_values(16), config=EngineConfig(certify="streaming"))
        run_workload(db, programs=10, failure_prob=0.0)
        first = db.certifier.finish()
        second = db.certifier.finish()
        assert first.ok == second.ok
        assert first.permanent_accesses == second.permanent_accesses

    def test_certify_requires_trace(self):
        with pytest.raises(ValueError, match="record_trace"):
            NestedTransactionDB(initial_values(4), config=EngineConfig(record_trace=False, certify="streaming"))

    def test_unknown_certify_mode_rejected(self):
        with pytest.raises(ValueError, match="streaming"):
            NestedTransactionDB(initial_values(4), config=EngineConfig(certify="offline"))

    def test_assert_certified_requires_certify(self):
        db = NestedTransactionDB(initial_values(4))
        with pytest.raises(ValueError, match="certify"):
            db.assert_certified()

    def test_assert_certified_raises_on_violation(self):
        db = NestedTransactionDB(initial_values(4), config=EngineConfig(certify="streaming"))
        # Inject a corrupt record directly into the trace stream: the
        # listener sees it immediately and the violation is queryable
        # without any finish() call.
        db.trace.record_perform(
            U.child("0"), U.child("0").child("r0"), "obj0000", "read", 77
        )
        db.trace.record_commit(U.child("0"))
        with pytest.raises(StreamingViolation, match="obj0000"):
            db.assert_certified()
        assert not db.certifier.ok

    def test_trace_bus_bridge_stream_certifies(self):
        """The JSONL event stream produced by TraceBusBridge + a file
        sink replays through feed_dict to the same verdict — the CI
        streaming gate's exact path."""
        db = NestedTransactionDB(initial_values(16), config=EngineConfig(latch_mode="striped", certify="streaming"))
        stream = io.StringIO()
        db.events.attach(JsonlFileSink(stream))
        bridge = db.trace.add_listener(TraceBusBridge(db.events))
        run_workload(db)
        live = db.certifier.finish()

        replayed = StreamingCertifier(db.initial_values)
        fed = 0
        for line in stream.getvalue().splitlines():
            event = json.loads(line)
            if event.get("kind") == "trace_record":
                replayed.feed_dict(event["record"])
                fed += 1
        report = replayed.finish()
        assert fed == len(db.trace.records) == bridge.forwarded
        assert report.ok == live.ok is True
        assert report.permanent_accesses == live.permanent_accesses


# ---------------------------------------------------------------------------
# The CLI gate itself
# ---------------------------------------------------------------------------

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CERTIFY_CLI = os.path.join(REPO_ROOT, "scripts", "certify_stream.py")


def run_cli(*args, stdin=None):
    return subprocess.run(
        [sys.executable, CERTIFY_CLI, *args],
        capture_output=True,
        text=True,
        input=stdin,
        timeout=120,
        cwd=REPO_ROOT,
    )


class TestCertifyStreamCLI:
    def _dump(self, tmp_path, records, initial):
        trace = tmp_path / "trace.jsonl"
        from repro.engine.trace import _record_to_json

        trace.write_text(
            "".join(json.dumps(_record_to_json(r)) + "\n" for r in records),
            encoding="utf-8",
        )
        init = tmp_path / "initial.json"
        init.write_text(json.dumps(initial), encoding="utf-8")
        return str(trace), str(init)

    def test_clean_trace_exits_zero(self, tmp_path):
        trace, init = self._dump(tmp_path, counter_trace(10, OBJECTS), INITIAL)
        report_path = str(tmp_path / "verdict.json")
        result = run_cli("--initial", init, "--report", report_path, trace)
        assert result.returncode == 0, result.stderr
        assert "CERTIFIED" in result.stdout
        verdict = json.loads(open(report_path).read())
        assert verdict["ok"] and verdict["input"]["records"] == 40

    def test_violating_trace_exits_one(self, tmp_path):
        records = counter_trace(6, OBJECTS)
        index = next(i for i, r in enumerate(records) if r.op == PERFORM)
        records[index] = replace(records[index], seen=55)
        trace, init = self._dump(tmp_path, records, INITIAL)
        result = run_cli("--initial", init, trace)
        assert result.returncode == 1
        assert "VIOLATION" in result.stdout
        assert VERSION in result.stderr

    def test_garbage_input_exits_two(self):
        result = run_cli("--objects", "4", "-", stdin="definitely not json\n")
        assert result.returncode == 2
