"""Direct unit/property tests for the waits-for graph and victim choice.

The deadlock detector was previously exercised only through end-to-end
engine runs; these tests pin :class:`WaitsForGraph`'s semantics on their
own terms — the nested-aware traversal (a holder is transitively blocked
by waits anywhere in its *subtree*), edge cleanup on transaction exit,
and the three victim policies.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.naming import U
from repro.engine.deadlock import (
    BLOCKER,
    REQUESTER,
    YOUNGEST,
    WaitsForGraph,
    choose_victim,
)

T1 = U.child("t1")
T2 = U.child("t2")
T3 = U.child("t3")
T1A = T1.child("a")
T2A = T2.child("a")


class TestEdges:
    def test_set_and_clear(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2, T3])
        assert len(graph) == 1
        graph.clear_waits(T1)
        assert len(graph) == 0

    def test_empty_blockers_removes_edge(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T1, [])
        assert len(graph) == 0

    def test_remove_transaction_clears_both_sides(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2, [T1])
        assert graph.find_cycle_from(T1) is not None
        graph.remove_transaction(T2)
        # Waiter side gone and T2 discarded from T1's blocker set: the
        # cycle is broken from both directions.
        assert graph.find_cycle_from(T1) is None
        graph.set_waits(T3, [T1])
        assert graph.find_cycle_from(T3) is None


class TestFindCycle:
    def test_direct_two_party_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2, [T1])
        cycle = graph.find_cycle_from(T1)
        assert cycle is not None
        assert cycle[0] == T1
        assert T2 in cycle

    def test_chain_is_not_a_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2, [T3])
        assert graph.find_cycle_from(T1) is None

    def test_cycle_through_blockers_subtree(self):
        """Nested-aware traversal: T1 waits on holder T2, and it is T2's
        *child* (not T2 itself) that waits on T1.  T2 cannot commit until
        its child finishes, so this is a real deadlock."""
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2A, [T1])
        cycle = graph.find_cycle_from(T1)
        assert cycle is not None
        assert cycle[0] == T1
        assert T2 in cycle

    def test_cycle_closing_on_an_ancestor(self):
        """A chain reaching an *ancestor* of the start is a deadlock: the
        ancestor cannot proceed until the start (its descendant) ends."""
        graph = WaitsForGraph()
        graph.set_waits(T1A, [T2])
        graph.set_waits(T2, [T1])  # blocks the parent of the start
        cycle = graph.find_cycle_from(T1A)
        assert cycle is not None
        assert cycle[0] == T1A
        assert cycle[-1] == T1

    def test_subtree_wait_without_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2A, [T3])  # T2's subtree waits, but on a free txn
        assert graph.find_cycle_from(T1) is None

    def test_three_party_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits(T1, [T2])
        graph.set_waits(T2, [T3])
        graph.set_waits(T3, [T1])
        cycle = graph.find_cycle_from(T1)
        assert cycle is not None
        assert set(cycle) == {T1, T2, T3}

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda e: e[0] < e[1]
            ),
            max_size=30,
        )
    )
    def test_forward_edges_never_deadlock(self, edges):
        """Waits that only point 'forward' (waiter index < blocker index)
        form a DAG over sibling top-level transactions: no start node may
        report a cycle."""
        graph = WaitsForGraph()
        names = [U.child(i) for i in range(10)]
        by_waiter = {}
        for waiter, blocker in edges:
            by_waiter.setdefault(waiter, set()).add(blocker)
        for waiter, blockers in by_waiter.items():
            graph.set_waits(names[waiter], [names[b] for b in blockers])
        for name in names:
            assert graph.find_cycle_from(name) is None

    @given(st.integers(2, 8))
    def test_ring_always_detected(self, size):
        graph = WaitsForGraph()
        names = [U.child(i) for i in range(size)]
        for i, name in enumerate(names):
            graph.set_waits(name, [names[(i + 1) % size]])
        for name in names:
            cycle = graph.find_cycle_from(name)
            assert cycle is not None
            assert cycle[0] == name


class TestChooseVictim:
    def test_requester_policy(self):
        assert choose_victim([T1, T2], REQUESTER, T1) == T1

    def test_youngest_picks_deepest(self):
        assert choose_victim([T1, T2A], YOUNGEST, T1) == T2A

    def test_youngest_breaks_depth_ties_by_name(self):
        # Deterministic: equal depth falls back to name order.
        assert choose_victim([T1, T2], YOUNGEST, T1) == T2

    def test_blocker_skips_requesters_ancestors(self):
        # T1 is an ancestor of the requester T1A: aborting it would take
        # the requester down too, so the policy passes over it.
        assert choose_victim([T1A, T1, T2], BLOCKER, T1A) == T2

    def test_blocker_falls_back_to_requester(self):
        # Every other party is an ancestor of the requester.
        assert choose_victim([T1A, T1], BLOCKER, T1A) == T1A

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown victim policy"):
            choose_victim([T1, T2], "coin-flip", T1)

    @given(st.sampled_from([REQUESTER, YOUNGEST, BLOCKER]))
    def test_victim_is_always_on_cycle_or_requester(self, policy):
        cycle = [T1A, T1, T2, T3]
        victim = choose_victim(cycle, policy, T1A)
        assert victim in cycle
