"""Unit tests for augmented action trees (paper Section 5.1)."""

from __future__ import annotations

import pytest

from repro.core import (
    ACTIVE,
    COMMITTED,
    ActionTree,
    AugmentedActionTree,
    U,
    Universe,
    add,
    read,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    universe.define_object("y", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(5))
    universe.declare_access(t2.child("r"), "x", read())
    universe.declare_access(t2.child("p"), "y", add(1))
    return universe


@pytest.fixture
def aat(uni):
    """Both transactions fully committed; data order: t1.w then t2.r on x."""
    t1, t2 = U.child(1), U.child(2)
    status = {
        U: ACTIVE,
        t1: COMMITTED,
        t1.child("w"): COMMITTED,
        t2: COMMITTED,
        t2.child("r"): COMMITTED,
        t2.child("p"): COMMITTED,
    }
    labels = {t1.child("w"): 0, t2.child("r"): 5, t2.child("p"): 0}
    tree = ActionTree(uni, status, labels)
    data = {
        "x": (t1.child("w"), t2.child("r")),
        "y": (t2.child("p"),),
    }
    return AugmentedActionTree(tree, data)


class TestStructure:
    def test_initial(self, uni):
        aat = AugmentedActionTree.initial(uni)
        assert aat.tree.vertices == frozenset([U])
        assert aat.data == {}
        aat.validate()

    def test_validate_accepts(self, aat):
        aat.validate()

    def test_validate_rejects_wrong_object(self, uni, aat):
        t1, t2 = U.child(1), U.child(2)
        bad = AugmentedActionTree(
            aat.tree, {"x": (t1.child("w"), t2.child("p"))}
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_incomplete_order(self, aat):
        bad = AugmentedActionTree(aat.tree, {"x": (U.child(1).child("w"),)})
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_duplicates(self, aat):
        w = U.child(1).child("w")
        bad = AugmentedActionTree(aat.tree, {"x": (w, w)})
        with pytest.raises(ValueError):
            bad.validate()

    def test_delegation_to_tree(self, aat):
        assert aat.is_committed(U.child(1))
        assert set(aat.datasteps_for("x")) == {
            U.child(1).child("w"),
            U.child(2).child("r"),
        }

    def test_equality(self, uni, aat):
        same = AugmentedActionTree(aat.tree, aat.data)
        assert aat == same
        assert hash(aat) == hash(same)
        different = AugmentedActionTree(
            aat.tree,
            {"x": tuple(reversed(aat.data_sequence("x"))), "y": aat.data_sequence("y")},
        )
        assert aat != different


class TestDataOrder:
    def test_data_before(self, aat):
        w, r = U.child(1).child("w"), U.child(2).child("r")
        assert aat.data_before(w, r)
        assert not aat.data_before(r, w)
        # Reflexive on members.
        assert aat.data_before(w, w)
        # Cross-object pairs are unrelated.
        assert not aat.data_before(U.child(2).child("p"), r)

    def test_data_before_non_member(self, aat):
        stranger = U.child(9)
        assert not aat.data_before(stranger, stranger)

    def test_v_data(self, aat):
        r = U.child(2).child("r")
        assert aat.v_data(r) == [U.child(1).child("w")]
        assert aat.v_data(U.child(1).child("w")) == []

    def test_v_data_excludes_invisible(self, uni):
        """A live-but-uncommitted chain hides its data steps."""
        t1, t2 = U.child(1), U.child(2)
        status = {
            U: ACTIVE,
            t1: ACTIVE,  # not committed: its write is not visible to t2
            t1.child("w"): COMMITTED,
            t2: COMMITTED,
            t2.child("r"): COMMITTED,
        }
        labels = {t1.child("w"): 0, t2.child("r"): 0}
        tree = ActionTree(uni, status, labels)
        aat = AugmentedActionTree(
            tree, {"x": (t1.child("w"), t2.child("r"))}
        )
        assert aat.v_data(t2.child("r")) == []

    def test_sibling_data_edges(self, aat):
        t1, t2 = U.child(1), U.child(2)
        assert aat.sibling_data_edges() == {(t1, t2)}

    def test_sibling_data_skips_ancestor_pairs(self, uni):
        """Data steps in the same subtree produce edges at the deepest
        divergence only."""
        t = U.child(1)
        universe = Universe()
        universe.define_object("x", init=0)
        universe.declare_access(t.child(0), "x", write(1))
        universe.declare_access(t.child(1), "x", read())
        status = {
            U: ACTIVE,
            t: COMMITTED,
            t.child(0): COMMITTED,
            t.child(1): COMMITTED,
        }
        labels = {t.child(0): 0, t.child(1): 1}
        tree = ActionTree(universe, status, labels)
        aat = AugmentedActionTree(tree, {"x": (t.child(0), t.child(1))})
        assert aat.sibling_data_edges() == {(t.child(0), t.child(1))}


class TestUpdates:
    def test_with_performed_appends(self, uni):
        t1 = U.child(1)
        aat = (
            AugmentedActionTree.initial(uni)
            .with_tree(
                ActionTree.initial(uni)
                .with_created(t1)
                .with_created(t1.child("w"))
            )
            .with_performed(t1.child("w"), 0)
        )
        assert aat.data_sequence("x") == (t1.child("w"),)
        assert aat.tree.label(t1.child("w")) == 0

    def test_perm_restricts_data(self, uni):
        """Data steps outside perm(T) drop out of the data order."""
        t1, t2 = U.child(1), U.child(2)
        status = {
            U: ACTIVE,
            t1: COMMITTED,
            t1.child("w"): COMMITTED,
            t2: ACTIVE,  # t2 still active: its subtree is not permanent
            t2.child("r"): COMMITTED,
        }
        labels = {t1.child("w"): 0, t2.child("r"): 5}
        tree = ActionTree(uni, status, labels)
        aat = AugmentedActionTree(tree, {"x": (t1.child("w"), t2.child("r"))})
        perm = aat.perm()
        assert perm.data_sequence("x") == (t1.child("w"),)
        assert t2.child("r") not in perm.tree.vertices
