"""Property tests for action summaries (paper §9.1): the ≼ relation and
union form the lattice the buffer semantics rely on."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ABORTED, ACTIVE, COMMITTED, ActionSummary, U


@st.composite
def summaries(draw):
    """Summaries over a small action pool with coherent statuses: one
    global 'true' status per action, and each summary knows either
    nothing, 'active', or the true status — the knowledge states valid
    runs produce."""
    pool = [U.child(i) for i in range(5)]
    truth = {
        action: draw(st.sampled_from([ACTIVE, COMMITTED, ABORTED]))
        for action in pool
    }
    status = {}
    for action in pool:
        knowledge = draw(st.sampled_from(["none", "stale", "true"]))
        if knowledge == "stale":
            status[action] = ACTIVE
        elif knowledge == "true":
            status[action] = truth[action]
    return ActionSummary(status)


@st.composite
def summary_pairs(draw):
    """Two summaries drawn against the *same* truth (so unions never see
    committed/aborted conflicts)."""
    pool = [U.child(i) for i in range(5)]
    truth = {
        action: draw(st.sampled_from([ACTIVE, COMMITTED, ABORTED]))
        for action in pool
    }

    def one():
        status = {}
        for action in pool:
            knowledge = draw(st.sampled_from(["none", "stale", "true"]))
            if knowledge == "stale":
                status[action] = ACTIVE
            elif knowledge == "true":
                status[action] = truth[action]
        return ActionSummary(status)

    return one(), one()


class TestLatticeProperties:
    @given(summaries())
    def test_containment_reflexive(self, summary):
        assert summary.contained_in(summary)

    @given(summary_pairs())
    def test_union_is_upper_bound(self, pair):
        a, b = pair
        merged = a.union(b)
        assert a.contained_in(merged)
        assert b.contained_in(merged)

    @given(summary_pairs())
    def test_union_commutative(self, pair):
        a, b = pair
        assert a.union(b) == b.union(a)

    @given(summaries())
    def test_union_idempotent(self, summary):
        assert summary.union(summary) == summary

    @given(summary_pairs())
    def test_empty_is_bottom(self, pair):
        a, _b = pair
        empty = ActionSummary.empty()
        assert empty.contained_in(a)
        assert empty.union(a) == a

    @given(summary_pairs())
    def test_containment_transitive_through_union(self, pair):
        a, b = pair
        merged = a.union(b)
        bigger = merged.union(a)
        assert merged.contained_in(bigger)


class TestEdgeCases:
    def test_of_tree_roundtrip(self):
        from repro.core import ActionTree, Universe

        universe = Universe()
        universe.define_object("x", init=0)
        tree = ActionTree.initial(universe).with_created(U.child(1))
        summary = ActionSummary.of_tree(tree)
        assert summary.is_active(U)
        assert summary.is_active(U.child(1))
        assert summary.contained_in(tree)

    def test_single(self):
        s = ActionSummary.single(U.child(1), COMMITTED)
        assert len(s) == 1
        assert s.is_committed(U.child(1))
        assert s.is_done(U.child(1))
        assert not s.is_done(U.child(2))

    def test_containment_fails_on_status_downgrade(self):
        committed = ActionSummary.single(U.child(1), COMMITTED)
        aborted = ActionSummary.single(U.child(1), ABORTED)
        assert not committed.contained_in(aborted)
        assert not aborted.contained_in(committed)

    def test_contained_in_rejects_other_types(self):
        # (Empty summaries are vacuously contained in anything, so probe
        # with a non-empty one.)
        with pytest.raises(TypeError):
            ActionSummary.single(U.child(1), ACTIVE).contained_in(42)

    def test_repr(self):
        s = ActionSummary.single(U.child(1), ACTIVE)
        assert "1a/0c/0x" in repr(s)
