"""Spontaneous failures in the distributed simulator, and MVTO version GC."""

from __future__ import annotations

import random


from repro.baselines import MVTODatabase
from repro.core import Level2Algebra, is_data_serializable, project_run
from repro.distributed import (
    DistributedMossSystem,
    PolicyConfig,
    random_distributed_scenario,
)


class TestSpontaneousAborts:
    def test_failures_injected_and_run_stays_valid(self):
        rng = random.Random(21)
        scenario, homes = random_distributed_scenario(rng, node_count=3, toplevel=5)
        system = DistributedMossSystem(
            scenario, homes, PolicyConfig(), seed=21, spontaneous_abort_prob=0.4
        )
        report, events = system.run()
        assert report.aborted > 0  # failures actually happened
        # The run is still a valid computation all the way down, and its
        # permanent subtree is serializable (Theorems 29 + 14).
        level2 = Level2Algebra(scenario.universe)
        final = level2.run(project_run(events, 2))
        assert is_data_serializable(final.perm())

    def test_failed_toplevels_count_as_done(self):
        rng = random.Random(22)
        scenario, homes = random_distributed_scenario(rng, node_count=2, toplevel=4)
        system = DistributedMossSystem(
            scenario, homes, seed=22, spontaneous_abort_prob=0.6
        )
        report, _events = system.run()
        # Aborted top-levels are 'done': the run still quiesces.
        assert report.steps < system.max_steps

    def test_zero_probability_means_no_spontaneous_aborts(self):
        rng = random.Random(23)
        scenario, homes = random_distributed_scenario(rng, node_count=2, toplevel=3)
        system = DistributedMossSystem(scenario, homes, seed=23)
        report, _events = system.run()
        # stall-breaking may still abort; with these small scenarios and
        # the default seed it does not.
        assert report.aborted == report.stalls_broken


class TestMVTOVersionGC:
    def test_prune_keeps_readable_snapshot(self):
        db = MVTODatabase({"a": 0})
        old = db.begin_transaction()  # ts=1: pins version 0
        for i in range(5):
            with db.transaction() as t:
                t.write("a", i + 10)
        assert db.version_count() == 6
        pruned = db.prune_versions()
        # Version 0 must survive (old can still read it), as must every
        # version old might... versions above the watermark all stay.
        assert pruned == 0
        assert old.read("a") == 0
        old.commit()

    def test_prune_drops_unreadable_history(self):
        db = MVTODatabase({"a": 0})
        for i in range(5):
            with db.transaction() as t:
                t.write("a", i + 10)
        assert db.version_count() == 6
        pruned = db.prune_versions()  # no active transactions
        assert pruned == 5
        assert db.version_count() == 1
        assert db.snapshot()["a"] == 14

    def test_watermark_respects_oldest_active(self):
        db = MVTODatabase({"a": 0})
        with db.transaction() as t:
            t.write("a", 1)  # version at ts 1
        mid = db.begin_transaction()  # ts=2
        with db.transaction() as t:
            t.write("a", 2)  # version at ts 3
        pruned = db.prune_versions()
        # Version 0 is unreadable (mid reads ts-1's version); version at
        # ts 1 must stay for mid; ts-3 version stays as the latest.
        assert pruned == 1
        assert mid.read("a") == 1
        mid.commit()

    def test_automatic_gc(self):
        db = MVTODatabase({"a": 0}, gc_every=3)
        for i in range(12):
            with db.transaction() as t:
                t.write("a", i)
        # GC ran at least every 3 commits, so growth is bounded.
        assert db.version_count() <= 4

    def test_gc_with_concurrent_reader_correct(self):
        db = MVTODatabase({"a": 0, "b": 0}, gc_every=2)
        reader = db.begin_transaction()
        for i in range(6):
            with db.transaction() as t:
                t.write("a", i)
        assert reader.read("a") == 0  # snapshot preserved across GC
        reader.commit()
