"""RetryPolicy jitter determinism.

Regression suite for the unseedable-jitter bug: ``RetryPolicy.delay``
used to draw from the module-global ``random``, so chaos and benchmark
runs were irreproducible and any ``random.seed()`` elsewhere in the
process was silently perturbed by retries.  Each policy now owns its own
``random.Random`` (injectable), seeded from the ``seed`` field.
"""

from __future__ import annotations

import random

from repro.engine.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class TestSeededJitter:
    def test_same_seed_same_delays(self):
        """The headline regression: two policies built from the same seed
        produce identical delay sequences, run after run."""
        first = RetryPolicy(backoff=0.001, jitter=0.01, seed=42)
        second = RetryPolicy(backoff=0.001, jitter=0.01, seed=42)
        assert [first.delay(n) for n in range(1, 20)] == [
            second.delay(n) for n in range(1, 20)
        ]

    def test_different_seeds_differ(self):
        a = RetryPolicy(jitter=1.0, seed=1)
        b = RetryPolicy(jitter=1.0, seed=2)
        assert [a.delay(1) for _ in range(8)] != [b.delay(1) for _ in range(8)]

    def test_policy_rng_is_not_the_module_global(self):
        """Drawing jitter must not consume (or depend on) the module-global
        random stream.  Before the fix, interleaving policy.delay() calls
        shifted ``random.random()``'s sequence."""
        random.seed(1234)
        expected = [random.random() for _ in range(6)]
        random.seed(1234)
        policy = RetryPolicy(jitter=1.0, seed=7)
        observed = []
        for _ in range(6):
            policy.delay(1)  # would advance the global stream pre-fix
            observed.append(random.random())
        assert observed == expected

    def test_global_seed_does_not_steer_policy(self):
        """Conversely, ``random.seed()`` elsewhere cannot re-aim a seeded
        policy's jitter stream mid-flight."""
        baseline = RetryPolicy(jitter=1.0, seed=9)
        expected = [baseline.delay(1) for _ in range(6)]
        steered = RetryPolicy(jitter=1.0, seed=9)
        observed = []
        for i in range(6):
            random.seed(i)
            observed.append(steered.delay(1))
        assert observed == expected

    def test_injected_rng_is_used(self):
        class FixedRandom(random.Random):
            def random(self):
                return 0.5

        policy = RetryPolicy(backoff=0.0, jitter=0.2, rng=FixedRandom())
        assert policy.delay(1) == 0.1
        assert policy.delay(3) == 0.1

    def test_jitter_bounds_and_linearity_unchanged(self):
        policy = RetryPolicy(backoff=0.01, jitter=0.005, seed=3)
        for attempt in (1, 2, 5):
            d = policy.delay(attempt)
            assert 0.01 * attempt <= d <= 0.01 * attempt + 0.005

    def test_zero_jitter_is_exact_and_rngless_paths_work(self):
        policy = RetryPolicy(backoff=0.002, jitter=0.0, seed=11)
        assert policy.delay(4) == 0.008

    def test_default_policy_owns_an_rng(self):
        assert DEFAULT_RETRY_POLICY.rng is not None
        assert DEFAULT_RETRY_POLICY.rng is not random

    def test_equality_ignores_the_rng_instance(self):
        """Two same-parameter policies compare equal even though each owns
        a distinct Random (the rng field is compare=False)."""
        assert RetryPolicy(jitter=0.1, seed=5) == RetryPolicy(jitter=0.1, seed=5)
