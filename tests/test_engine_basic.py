"""Engine basics: lifecycle, value semantics, version stacks, errors."""

from __future__ import annotations

import pytest

from repro.engine import (
    EngineConfig,
    InvalidTransactionState,
    NestedTransactionDB,
    TransactionAborted,
    UnknownObject,
    VersionStack,
)
from repro.core.naming import U


@pytest.fixture
def db():
    return NestedTransactionDB({"a": 10, "b": 20})


class TestLifecycle:
    def test_commit_publishes(self, db):
        with db.transaction() as t:
            t.write("a", 11)
        assert db.snapshot()["a"] == 11
        assert db.read_committed("a") == 11

    def test_abort_restores(self, db):
        txn = db.begin_transaction()
        txn.write("a", 99)
        txn.abort()
        assert db.snapshot()["a"] == 10

    def test_context_manager_aborts_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as t:
                t.write("a", 99)
                raise RuntimeError("boom")
        assert db.snapshot()["a"] == 10

    def test_nested_commit_chains_upward(self, db):
        with db.transaction() as t:
            with t.subtransaction() as s1:
                s1.write("a", 1)
                with s1.subtransaction() as s2:
                    s2.write("a", 2)
            assert t.read("a") == 2
        assert db.snapshot()["a"] == 2

    def test_child_abort_undoes_only_child(self, db):
        with db.transaction() as t:
            t.write("a", 50)
            child = t.begin_subtransaction()
            child.write("a", 60)
            child.write("b", 61)
            child.abort()
            assert t.read("a") == 50
            assert t.read("b") == 20
        assert db.snapshot() == {"a": 50, "b": 20}

    def test_commit_with_active_child_rejected(self, db):
        txn = db.begin_transaction()
        child = txn.begin_subtransaction()
        with pytest.raises(InvalidTransactionState):
            txn.commit()
        child.abort()
        txn.commit()

    def test_double_commit_rejected(self, db):
        txn = db.begin_transaction()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_commit_after_abort_raises(self, db):
        txn = db.begin_transaction()
        txn.abort()
        with pytest.raises(TransactionAborted):
            txn.commit()

    def test_abort_is_idempotent(self, db):
        txn = db.begin_transaction()
        txn.abort()
        txn.abort()

    def test_begin_under_done_parent_rejected(self, db):
        txn = db.begin_transaction()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.begin_subtransaction()

    def test_operations_on_orphan_raise(self, db):
        txn = db.begin_transaction()
        child = txn.begin_subtransaction()
        txn.abort()
        with pytest.raises(TransactionAborted):
            child.read("a")
        assert not child.is_live

    def test_abort_cascades_to_subtree(self, db):
        txn = db.begin_transaction()
        child = txn.begin_subtransaction()
        grandchild = child.begin_subtransaction()
        grandchild.write("a", 5)
        txn.abort()
        assert grandchild.status == "aborted"
        assert db.snapshot()["a"] == 10

    def test_unknown_object(self, db):
        with pytest.raises(UnknownObject):
            with db.transaction() as t:
                t.read("zzz")
        with pytest.raises(UnknownObject):
            db.read_committed("zzz")


class TestValues:
    def test_update_helper(self, db):
        with db.transaction() as t:
            assert t.update("a", lambda v: v * 2) == 20
        assert db.snapshot()["a"] == 20

    def test_read_own_write(self, db):
        with db.transaction() as t:
            t.write("a", 1)
            assert t.read("a") == 1

    def test_child_reads_parent_write(self, db):
        with db.transaction() as t:
            t.write("a", 42)
            with t.subtransaction() as s:
                assert s.read("a") == 42

    def test_initial_values_property(self, db):
        assert db.initial_values == {"a": 10, "b": 20}

    def test_run_transaction_returns_value(self, db):
        result = db.run_transaction(lambda t: t.read("a") + 1)
        assert result == 11

    def test_stats_counters(self, db):
        with db.transaction() as t:
            t.read("a")
            t.write("b", 0)
        stats = db.stats.snapshot()
        assert stats["begun"] == 1
        assert stats["committed"] == 1
        assert stats["reads"] == 1
        assert stats["writes"] == 1


class TestVersionStack:
    def test_push_and_restore(self):
        stack = VersionStack(5)
        t = U.child(0)
        stack.ensure_version(t)
        stack.set_value(t, 9)
        assert stack.current == 9
        stack.discard(t)
        assert stack.current == 5

    def test_commit_merges_with_parent_entry(self):
        stack = VersionStack(0)
        parent, child = U.child(0), U.child(0).child(1)
        stack.ensure_version(parent)
        stack.set_value(parent, 1)
        stack.ensure_version(child)
        stack.set_value(child, 2)
        stack.commit_to_parent(child)
        assert stack.current == 2
        assert stack.owner == parent
        assert len(stack.entries) == 2  # U entry + parent entry

    def test_commit_retags_without_parent_entry(self):
        stack = VersionStack(0)
        child = U.child(0).child(1)
        stack.ensure_version(child)
        stack.set_value(child, 2)
        stack.commit_to_parent(child)
        assert stack.owner == U.child(0)
        assert stack.current == 2

    def test_ensure_version_idempotent(self):
        stack = VersionStack(0)
        t = U.child(0)
        stack.ensure_version(t)
        stack.ensure_version(t)
        assert len(stack.entries) == 2

    def test_set_value_wrong_owner_asserts(self):
        stack = VersionStack(0)
        with pytest.raises(AssertionError):
            stack.set_value(U.child(0), 1)

    def test_discard_missing_is_noop(self):
        stack = VersionStack(0)
        stack.discard(U.child(0))
        assert stack.current == 0


class TestTraceRecording:
    def test_trace_shape(self, db):
        with db.transaction() as t:
            t.read("a")
            with t.subtransaction() as s:
                s.write("b", 1)
        ops = [r.op for r in db.trace.records]
        assert ops == ["create", "perform", "create", "perform", "commit", "commit"]
        perform = [r for r in db.trace.records if r.op == "perform"]
        assert perform[0].kind == "read"
        assert perform[0].seen == 10
        assert perform[1].kind == "write"
        assert perform[1].seen == 20
        assert perform[1].arg == 1

    def test_trace_can_be_disabled(self):
        db = NestedTransactionDB({"a": 0}, config=EngineConfig(record_trace=False))
        with db.transaction() as t:
            t.read("a")
        assert db.trace is None
