"""Propagation-policy coverage for the distributed simulator, the
deadlock-preemption (stall-breaking) path, and the differential check
that a scenario certifies identically on the simulator-era single
process engine and on the real multi-process cluster."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    HomeAssignment,
    Level1Algebra,
    U,
    Universe,
    project_run,
    write,
)
from repro.core.action_tree import ABORTED, ACTIVE, COMMITTED
from repro.core.explorer import Scenario
from repro.distributed import (
    BROADCAST,
    GOSSIP,
    TARGETED,
    DistributedMossSystem,
    PolicyConfig,
    random_distributed_scenario,
)
from repro.distributed.policy import all_other_nodes, interested_nodes


def _two_node_setting():
    universe = Universe()
    universe.define_object("x", init=0)
    universe.define_object("y", init=0)
    t1 = U.child(1)
    s1 = t1.child(0)
    universe.declare_access(s1.child("wx"), "x", write(1))
    universe.declare_access(s1.child("wy"), "y", write(1))
    homes = HomeAssignment(
        universe, 3,
        object_homes={"x": 0, "y": 2},
        action_homes={t1: 1, s1: 1},
    )
    return universe, Scenario(universe, (t1, s1)), homes, t1, s1


class TestPropagationPolicies:
    def test_active_change_targets_only_the_action_home(self):
        universe, scenario, homes, t1, s1 = _two_node_setting()
        access = s1.child("wx")
        # An access turning active matters only where perform is judged:
        # the access's home (= its object's home under this assignment).
        assert interested_nodes(access, ACTIVE, 1, scenario, homes) == {
            homes.home_of_action(access)
        }
        # An internal action turning active matters only at its own home
        # (node 1 == at_node here, so nothing needs sending).
        assert interested_nodes(s1, ACTIVE, 1, scenario, homes) == set()

    def test_commit_fans_out_to_parent_and_subtree_object_homes(self):
        universe, scenario, homes, t1, s1 = _two_node_setting()
        # s1's commit matters at home(t1)=1 (excluded: at_node), and at
        # the homes of both objects its subtree touches (0 and 2).
        assert interested_nodes(s1, COMMITTED, 1, scenario, homes) == {0, 2}
        # Same fan-out for aborts (lose-lock preconditions read them).
        assert interested_nodes(s1, ABORTED, 1, scenario, homes) == {0, 2}
        # From a different node, the action home itself is included.
        assert interested_nodes(s1, COMMITTED, 0, scenario, homes) == {1, 2}

    def test_root_status_never_propagates_parentward(self):
        universe, scenario, homes, t1, s1 = _two_node_setting()
        # t1's parent is the root U — no home, no message for it; only
        # the subtree's object homes are interested.
        assert interested_nodes(t1, COMMITTED, 1, scenario, homes) == {0, 2}

    def test_all_other_nodes(self):
        assert all_other_nodes(1, 4) == {0, 2, 3}
        assert all_other_nodes(0, 1) == set()

    def test_policy_kind_validated(self):
        with pytest.raises(ValueError):
            PolicyConfig(kind="carrier-pigeon")

    @pytest.mark.parametrize("kind", [BROADCAST, TARGETED, GOSSIP])
    def test_each_policy_completes_and_stays_valid(self, kind):
        scenario, homes = random_distributed_scenario(
            random.Random(11), node_count=3, locality=0.4, toplevel=3
        )
        system = DistributedMossSystem(
            scenario, homes, policy=PolicyConfig(kind=kind), seed=11
        )
        report, events = system.run()
        assert report.completed
        universe = scenario.universe
        assert Level1Algebra(universe).is_valid(project_run(events, 1))

    def test_targeted_never_costs_more_than_broadcast(self):
        scenario, homes = random_distributed_scenario(
            random.Random(7), node_count=4, locality=0.3, toplevel=4
        )
        bills = {}
        for kind in (BROADCAST, TARGETED):
            system = DistributedMossSystem(
                scenario, homes, policy=PolicyConfig(kind=kind), seed=7
            )
            report, _ = system.run()
            assert report.completed
            bills[kind] = report.messages
        assert bills[TARGETED] <= bills[BROADCAST]


class TestDeadlockPreemption:
    def _deadlock_setting(self):
        """Two top-levels acquiring x and y in opposite orders, with the
        declaration order forcing each to take its first lock before
        either can take its second: a guaranteed distributed deadlock."""
        universe = Universe()
        universe.define_object("x", init=0)
        universe.define_object("y", init=0)
        t1, t2 = U.child(1), U.child(2)
        s1, s2 = t1.child(0), t2.child(0)
        universe.declare_access(s1.child("wx"), "x", write(1))
        universe.declare_access(s2.child("wy"), "y", write(2))
        universe.declare_access(s1.child("wy"), "y", write(1))
        universe.declare_access(s2.child("wx"), "x", write(2))
        homes = HomeAssignment(
            universe, 2,
            object_homes={"x": 0, "y": 1},
            action_homes={t1: 0, s1: 0, t2: 1, s2: 1},
        )
        return universe, Scenario(universe, (t1, s1, t2, s2)), homes

    def test_stall_is_broken_by_ancestor_preemption(self):
        universe, scenario, homes = self._deadlock_setting()
        system = DistributedMossSystem(scenario, homes, seed=1)
        report, events = system.run()
        # The deadlock actually happened and was broken by aborting a
        # blocked access's nearest abortable ancestor.
        assert report.stalls_broken >= 1
        assert report.aborted >= 1
        assert report.completed
        assert report.abandoned == 0
        assert Level1Algebra(universe).is_valid(project_run(events, 1))

    def test_preemption_deterministic_under_seed(self):
        _, scenario, homes = self._deadlock_setting()
        first = DistributedMossSystem(scenario, homes, seed=1).run()[0]
        second = DistributedMossSystem(scenario, homes, seed=1).run()[0]
        assert first.as_row() == second.as_row()


@pytest.mark.crash
class TestSimulatorClusterDifferential:
    def test_same_scenario_certifies_identically(self):
        """One compiled scenario, two executions: the single-process
        engine (streaming-certified) and the multi-process cluster
        (merged-trace certified).  Both must reach the same verdicts:
        certified serializable, conservation invariant intact, every
        program eventually committed."""
        from repro.cluster import run_cluster_scenario
        from repro.scenarios import run_scenario
        from repro.scenarios.apps import build_scenario

        kwargs = dict(programs=10, users=10, seed=21)
        local = run_scenario("bank", threads=4, certify="streaming",
                             **kwargs)
        cluster = run_cluster_scenario("bank", shards=2, threads=4,
                                       durability=False, certified=True,
                                       **kwargs)
        assert local.certified is True
        assert cluster.certified_streaming is True
        assert cluster.certified_oracle is True
        assert local.invariant_ok and cluster.invariant_ok
        assert local.committed == len(build_scenario("bank", **kwargs).programs)
        assert cluster.committed == local.committed
        assert local.ok and cluster.ok
