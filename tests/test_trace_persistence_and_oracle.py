"""Trace persistence, executor latency stats, message-ordering edge cases,
and the oracle's sensitivity to trace mutations."""

from __future__ import annotations

import io
import random

import pytest

from repro.checker import check_trace_serializable
from repro.core import (
    ActionSummary,
    Create,
    HomeAssignment,
    Level5Algebra,
    Perform,
    Receive,
    Send,
    U,
    Universe,
    write,
)
from repro.core.action_tree import ACTIVE
from repro.engine import NestedTransactionDB, TraceRecord, TraceRecorder
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values


class TestTracePersistence:
    def _run(self):
        db = NestedTransactionDB({"a": 0, "b": 5})
        with db.transaction() as t:
            t.write("a", 1)
            with t.subtransaction() as s:
                s.write("b", s.read("a") + 1)
        txn = db.begin_transaction()
        txn.write("a", 99)
        txn.abort()
        return db

    def test_roundtrip_through_stream(self):
        db = self._run()
        buffer = io.StringIO()
        db.trace.dump(buffer)
        buffer.seek(0)
        loaded = TraceRecorder.load(buffer)
        assert loaded.records == db.trace.records

    def test_roundtrip_through_file(self, tmp_path):
        db = self._run()
        path = str(tmp_path / "trace.jsonl")
        db.trace.dump(path)
        loaded = TraceRecorder.load(path)
        assert loaded.records == db.trace.records

    def test_loaded_trace_certifies(self, tmp_path):
        db = self._run()
        path = str(tmp_path / "trace.jsonl")
        db.trace.dump(path)
        loaded = TraceRecorder.load(path)
        report = check_trace_serializable(loaded.records, db.initial_values)
        assert report.ok

    def test_string_labels_survive(self):
        recorder = TraceRecorder()
        txn = U.child(3)
        recorder.record_create(txn)
        recorder.record_perform(txn, txn.child("r0"), "x", "read", 7)
        buffer = io.StringIO()
        recorder.dump(buffer)
        buffer.seek(0)
        loaded = TraceRecorder.load(buffer)
        assert loaded.records[1].access == txn.child("r0")
        assert loaded.records[1].seen == 7

    def test_empty_trace_roundtrip(self, tmp_path):
        recorder = TraceRecorder()
        path = str(tmp_path / "empty.jsonl")
        recorder.dump(path)
        loaded = TraceRecorder.load(path)
        assert loaded.records == ()
        # The reloaded recorder is still usable: sequence numbering
        # restarts from zero, same as a fresh one.
        loaded.record_create(U.child(1))
        assert loaded.records[0].seq == 0

    def test_non_ascii_object_names_roundtrip(self, tmp_path):
        """Object names and values outside ASCII survive a file round
        trip byte-for-byte (files are written/read as UTF-8 regardless
        of locale, with ensure_ascii off so the JSONL stays readable)."""
        db = NestedTransactionDB({"café": 0, "口座": 5})
        with db.transaction() as t:
            t.write("café", "✓ français")
            t.write("口座", t.read("café"))
        path = str(tmp_path / "unicode.jsonl")
        db.trace.dump(path)
        # The on-disk form keeps the raw characters (no \uXXXX escapes).
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        assert "café" in raw and "口座" in raw
        loaded = TraceRecorder.load(path)
        assert loaded.records == db.trace.records
        report = check_trace_serializable(loaded.records, db.initial_values)
        assert report.ok


class TestLatencyStats:
    def test_percentiles_tracked(self):
        db = NestedTransactionDB(initial_values(8))
        cfg = WorkloadConfig(objects=8, programs=12, seed=1)
        report = execute(db, WorkloadGenerator(cfg).programs(), threads=2)
        assert len(report.latencies) == 12
        assert report.latency_percentile(0.0) <= report.latency_percentile(1.0)
        assert report.latency_percentile(0.95) > 0
        assert "p95_ms" in report.as_row()

    def test_percentile_validation(self):
        from repro.workload import ExecutionReport

        empty = ExecutionReport()
        assert empty.latency_percentile(0.5) == 0.0
        filled = ExecutionReport(latencies=[0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            filled.latency_percentile(1.5)
        assert filled.latency_percentile(0.0) == 0.1
        assert filled.latency_percentile(1.0) == 0.3


class TestMessageOrderingEdgeCases:
    def _setting(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1 = U.child(1)
        universe.declare_access(t1.child("w"), "x", write(1))
        homes = HomeAssignment(
            universe, 2, object_homes={"x": 1}, action_homes={t1: 0}
        )
        return universe, homes, Level5Algebra(universe, homes), t1

    def test_duplicate_receive_is_idempotent(self):
        universe, homes, algebra, t1 = self._setting()
        ship = ActionSummary({t1: ACTIVE})
        events = [
            Create(t1),
            Send(0, 1, ship),
            Receive(1, ship),
            Receive(1, ship),  # the buffer keeps everything ever sent
        ]
        state = algebra.run(events)
        assert state.node(1).summary.is_active(t1)

    def test_receive_subset_then_superset(self):
        universe, homes, algebra, t1 = self._setting()
        w = t1.child("w")
        full = ActionSummary({t1: ACTIVE, w: ACTIVE})
        part = ActionSummary({t1: ACTIVE})
        events = [
            Create(t1),
            Create(w),
            Send(0, 1, full),
            Receive(1, part),  # any sub-summary of M_1 may be delivered
            Receive(1, full),
        ]
        state = algebra.run(events)
        assert state.node(1).summary.is_active(w)

    def test_stale_knowledge_redelivery_cannot_downgrade(self):
        """Receiving an old 'active' after learning 'committed' keeps the
        newer status (union precedence)."""
        universe, homes, algebra, t1 = self._setting()
        w = t1.child("w")
        stale = ActionSummary({w: ACTIVE})
        events = [
            Create(t1),
            Create(w),
            Send(0, 1, stale),  # ships 'active' before the perform
            Receive(1, stale),
            Perform(w, 0),      # w commits at node 1 (home of x)
            Receive(1, stale),  # stale redelivery from the buffer
        ]
        state = algebra.run(events)
        assert state.node(1).summary.is_committed(w)


class TestOracleMutationSensitivity:
    """Mutate a certified trace and confirm the oracle notices: the checks
    are not vacuous for any record field that matters."""

    def _good_trace(self):
        db = NestedTransactionDB({"x": 0, "y": 0})
        with db.transaction() as t:
            t.write("x", 3)
        with db.transaction() as t:
            assert t.read("x") == 3
            t.write("y", t.read("x") + 1)
        assert check_trace_serializable(db.trace.records, db.initial_values).ok
        return list(db.trace.records), db.initial_values

    def test_mutating_read_values_is_caught(self):
        records, initial = self._good_trace()
        rng = random.Random(0)
        caught = 0
        total = 0
        for index, record in enumerate(records):
            if record.op != "perform" or record.kind != "read":
                continue
            total += 1
            mutated = list(records)
            mutated[index] = TraceRecord(
                record.op,
                record.txn,
                record.access,
                record.obj,
                record.kind,
                seen=(record.seen or 0) + rng.randint(1, 9),
            )
            report = check_trace_serializable(mutated, initial, strict=False)
            if not report.ok:
                caught += 1
        assert total > 0
        assert caught == total  # every read-value mutation detected

    def test_dropping_a_commit_hides_the_subtree(self):
        """Removing a commit makes the writer non-permanent: the reader's
        seen value becomes inexplicable."""
        records, initial = self._good_trace()
        # drop the first top-level's commit
        index = next(
            i for i, r in enumerate(records) if r.op == "commit" and r.txn.depth == 1
        )
        mutated = records[:index] + records[index + 1 :]
        report = check_trace_serializable(mutated, initial, strict=False)
        assert not report.ok

    def test_swapping_conflicting_writes_is_caught(self):
        """Two committed writers to one object, then a reader: swapping
        the writers' order in the trace flips the expected value."""
        db = NestedTransactionDB({"x": 0})
        with db.transaction() as t:
            t.write("x", 1)
        with db.transaction() as t:
            t.write("x", 2)
        with db.transaction() as t:
            assert t.read("x") == 2
        records = list(db.trace.records)
        perform_indexes = [
            i for i, r in enumerate(records) if r.op == "perform" and r.kind == "write"
        ]
        i, j = perform_indexes[0], perform_indexes[1]
        records[i], records[j] = (
            TraceRecord("perform", records[j].txn, records[j].access, "x", "write", 0, 2),
            TraceRecord("perform", records[i].txn, records[i].access, "x", "write", 0, 1),
        )
        report = check_trace_serializable(records, db.initial_values, strict=False)
        assert not report.ok