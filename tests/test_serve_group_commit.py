"""WAL group commit under batched submission: coalescing and fairness.

The submitter turns commit acks into group fsyncs two layers above the
WAL that invented the pattern (``durability/wal.py``).  These tests pin
the contract that makes that safe and fair:

* **coalescing** — a burst of sessions committing through the submitter
  reaches disk with strictly fewer fsyncs than commits;
* **ack implies durable** — a commit future never resolves before the
  WAL's durable horizon covers its record, even mid-burst;
* **monotone horizon** — the durable LSN only advances under a burst;
* **no follower starvation** — with a deliberately slow fsync, every
  follower's commit resolves in bounded time; the leader's fsync covers
  them rather than starving them (commit acks may wait one sync, never
  indefinitely many).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.durability import DurabilityManager
from repro.engine import EngineConfig, NestedTransactionDB
from repro.serve import BatchSubmitter

MODES = ("global", "striped")


def make_durable_db(tmp_path, latch_mode="global", **wal_kwargs):
    manager = DurabilityManager(str(tmp_path / "wal"), **wal_kwargs)
    init = {"o%d" % i: 0 for i in range(64)}
    return NestedTransactionDB(
        init, config=EngineConfig(latch_mode=latch_mode, durability=manager)
    )


def commit_burst(sub, sessions, start_barrier=None):
    """Drive ``sessions`` client threads through the submitter: each
    begins, increments its own object, and commits.  Returns the list of
    per-commit ack wall times."""
    ack_seconds = []
    ack_lock = threading.Lock()

    def one(i):
        if start_barrier is not None:
            start_barrier.wait()
        txn = sub.submit_begin().result(timeout=30)
        sub.submit_op(txn, "increment", "o%d" % (i % 64), 1).result(timeout=30)
        submitted = time.perf_counter()
        sub.submit_commit(txn).result(timeout=30)
        with ack_lock:
            ack_seconds.append(time.perf_counter() - submitted)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(sessions)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "a committer starved"
    return ack_seconds


@pytest.mark.parametrize("mode", MODES)
def test_burst_coalesces_fsyncs(tmp_path, mode):
    db = make_durable_db(tmp_path, mode)
    sub = BatchSubmitter(db, workers=2, max_batch=64)
    try:
        barrier = threading.Barrier(32)
        commit_burst(sub, 32, barrier)
    finally:
        sub.close(timeout=30)
    wal = db.durability.wal
    assert wal.synced_commits == 32
    # The whole point of batched submission: the burst reached disk in
    # strictly fewer fsyncs than commits.
    assert wal.syncs < 32
    assert wal.durable_lsn == wal.last_lsn
    db.assert_quiescent()


def test_commit_ack_implies_durable_horizon_covers_it(tmp_path):
    db = make_durable_db(tmp_path)
    sub = BatchSubmitter(db, workers=2, max_batch=16)
    wal = db.durability.wal
    violations = []

    def committer(i):
        txn = sub.submit_begin().result(timeout=30)
        sub.submit_op(txn, "increment", "o%d" % (i % 64), 1).result(timeout=30)
        sub.submit_commit(txn).result(timeout=30)
        # The ack promised durability: everything this engine appended
        # for us is at or below the horizon the WAL reports synced.
        if wal.durable_lsn < 1:
            violations.append(i)

    try:
        threads = [
            threading.Thread(target=committer, args=(i,)) for i in range(24)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        sub.close(timeout=30)
    assert not violations
    assert wal.durable_lsn == wal.last_lsn
    assert wal.appended_commits == wal.synced_commits == 24


def test_durable_horizon_monotone_under_burst(tmp_path):
    db = make_durable_db(tmp_path, "striped")
    sub = BatchSubmitter(db, workers=3, max_batch=32)
    wal = db.durability.wal
    samples = []
    stop = threading.Event()

    def sampler():
        while not stop.is_set():
            samples.append(wal.durable_lsn)
            time.sleep(0.0005)

    watcher = threading.Thread(target=sampler)
    watcher.start()
    try:
        commit_burst(sub, 48)
    finally:
        sub.close(timeout=30)
        stop.set()
        watcher.join(timeout=10)
    samples.append(wal.durable_lsn)
    assert samples == sorted(samples), "durable horizon moved backwards"
    assert samples[-1] == wal.last_lsn


def test_slow_fsync_leader_covers_followers(tmp_path):
    """With fsync costing 5 ms, 40 commits through the submitter must
    still all resolve quickly: followers ride the leader's fsync instead
    of queueing 40 individual syncs.  The fairness bound: no commit ack
    waits for more than a handful of fsync windows, and the total fsync
    count stays far below the commit count."""
    fsyncs = []

    def slow_fsync(fd):
        fsyncs.append(time.perf_counter())
        time.sleep(0.005)
        os.fsync(fd)

    db = make_durable_db(tmp_path, fsync_fn=slow_fsync)
    sub = BatchSubmitter(db, workers=2, max_batch=64)
    try:
        barrier = threading.Barrier(40)
        acks = commit_burst(sub, 40, barrier)
    finally:
        sub.close(timeout=30)
    wal = db.durability.wal
    assert wal.synced_commits == 40
    assert wal.syncs <= 20  # coalescing beat one-sync-per-commit by 2x+
    # Fairness: the worst ack waited a bounded number of 5 ms windows,
    # not a 40-deep sync queue (which would cost >= 200 ms).
    assert max(acks) < 0.2
    db.assert_quiescent()


def test_interleaved_batches_keep_unrelated_commits_fair(tmp_path):
    """A session that commits while another session's ops keep flowing
    must not wait for the stream to drain: its ack arrives while the
    stream is still running."""
    db = make_durable_db(tmp_path)
    sub = BatchSubmitter(db, workers=2, max_batch=8)
    stop = threading.Event()

    def stream():
        while not stop.is_set():
            txn = sub.submit_begin().result(timeout=30)
            sub.submit_op(txn, "increment", "o1", 1).result(timeout=30)
            sub.submit_commit(txn).result(timeout=30)

    streamer = threading.Thread(target=stream)
    streamer.start()
    try:
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            txn = sub.submit_begin().result(timeout=30)
            sub.submit_op(txn, "increment", "o2", 1).result(timeout=30)
            started = time.perf_counter()
            sub.submit_commit(txn).result(timeout=30)
            assert time.perf_counter() - started < 2.0
            if time.perf_counter() - started < 0.5:
                break  # fair and fast — done
        else:
            raise AssertionError("commit ack starved behind the stream")
    finally:
        stop.set()
        streamer.join(timeout=30)
        sub.close(timeout=30)
    db.assert_quiescent()
