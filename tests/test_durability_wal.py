"""Unit tests for the durability primitives: WAL framing and replay,
segment rotation and truncation, group-commit fsync batching, checkpoint
files, and the standalone RecoveryManager."""

import json
import os
import struct
import zlib

import pytest

from repro.core.naming import ActionName
from repro.durability.checkpoint import Checkpointer
from repro.durability.recovery import RecoveryManager
from repro.durability.wal import (
    SYNC_GROUP,
    SYNC_NONE,
    CorruptSegmentError,
    WalSyncError,
    WriteAheadLog,
    list_segments,
    replay_commits,
)


def frame(record):
    payload = json.dumps(record).encode("utf-8")
    return struct.pack(">II", len(payload), zlib.crc32(payload)) + payload

T1 = ActionName((1,))
T2 = ActionName((2,))
T3 = ActionName((3,))


def wal_dir(tmp_path):
    return str(tmp_path / "wal")


# ---------------------------------------------------------------------------
# Framing / replay
# ---------------------------------------------------------------------------


def test_append_replay_roundtrip(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path))
    lsn1 = wal.append_commit(T1, {"x": 5, "y": 7})
    lsn2 = wal.append_commit(T2, {"x": 6})
    assert lsn2 > lsn1
    wal.close()

    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [(c.txn, c.writes) for c in commits] == [
        (T1, {"x": 5, "y": 7}),
        (T2, {"x": 6}),
    ]
    assert commits[0].lsn == lsn1 and commits[1].lsn == lsn2
    assert stats.commits == 2
    assert stats.discarded_records == 0
    assert not stats.torn_tail
    assert stats.last_lsn == lsn2


def test_replay_after_lsn_skips_covered_commits(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path))
    lsn1 = wal.append_commit(T1, {"x": 1})
    wal.append_commit(T2, {"x": 2})
    wal.close()
    commits, stats = replay_commits(wal_dir(tmp_path), after_lsn=lsn1)
    assert [c.writes for c in commits] == [{"x": 2}]
    assert stats.commits == 1


def test_corrupt_frame_ends_the_scan(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    boundary = os.path.getsize(wal.segments[0])
    wal.append_commit(T2, {"x": 2})
    path = wal.segments[0]
    wal.close()

    # Flip one payload byte of the second batch: its CRC no longer
    # matches, so replay must stop there and keep only the first commit.
    with open(path, "rb+") as fh:
        fh.seek(boundary + 8 + 2)  # past the first frame header
        byte = fh.read(1)
        fh.seek(boundary + 8 + 2)
        fh.write(bytes([byte[0] ^ 0xFF]))

    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [c.writes for c in commits] == [{"x": 1}]
    assert stats.torn_tail


def test_torn_tail_truncated_on_reopen(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    path = wal.segments[0]
    wal.close()
    whole = os.path.getsize(path)

    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T2, {"x": 2})
    wal.close()
    with open(path, "rb+") as fh:  # tear T2's batch mid-header
        fh.truncate(whole + 1)

    commits, stats = replay_commits(wal_dir(tmp_path))
    assert stats.torn_tail
    assert [c.writes for c in commits] == [{"x": 1}]

    # Reopening for append drops the torn tail, then extends a valid log.
    wal = WriteAheadLog(wal_dir(tmp_path))
    assert os.path.getsize(path) == whole
    wal.append_commit(T3, {"x": 3})
    wal.close()
    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [c.writes for c in commits] == [{"x": 1}, {"x": 3}]
    assert not stats.torn_tail


def test_uncommitted_batch_is_discarded(tmp_path):
    """Write frames without a commit frame model a crash mid-batch: the
    values must never be replayed."""
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    path = wal.segments[0]
    wal.close()

    payload = json.dumps(
        {"t": "w", "l": 99, "x": [2], "o": "x", "v": 1234}
    ).encode("utf-8")
    with open(path, "ab") as fh:  # a valid frame, but no commit follows
        fh.write(struct.pack(">II", len(payload), zlib.crc32(payload)))
        fh.write(payload)

    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [c.writes for c in commits] == [{"x": 1}]
    assert stats.discarded_records == 1
    assert stats.per_txn_discarded == [str(T2)]


def test_commit_with_wrong_count_is_discarded(tmp_path):
    """A commit frame whose batch is not whole (count mismatch) must not
    apply a partial batch."""
    directory = wal_dir(tmp_path)
    os.makedirs(directory)

    def frame(record):
        payload = json.dumps(record).encode("utf-8")
        return struct.pack(">II", len(payload), zlib.crc32(payload)) + payload

    with open(os.path.join(directory, "wal-00000001.log"), "wb") as fh:
        fh.write(frame({"t": "w", "l": 1, "x": [1], "o": "x", "v": 5}))
        fh.write(frame({"t": "c", "l": 2, "x": [1], "n": 2}))  # claims 2 writes

    commits, stats = replay_commits(directory)
    assert commits == []
    assert stats.discarded_records == 1
    assert str(T1) in stats.per_txn_discarded


# ---------------------------------------------------------------------------
# Rotation / truncation
# ---------------------------------------------------------------------------


def test_segment_rotation_and_cross_segment_replay(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path), segment_max_bytes=1)
    for i in range(1, 6):
        wal.append_commit(ActionName((i,)), {"x": i})
    assert wal.rotations >= 4
    assert len(list_segments(wal_dir(tmp_path))) >= 5
    wal.close()
    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [c.writes["x"] for c in commits] == [1, 2, 3, 4, 5]
    assert stats.segments >= 5


def test_truncate_through_only_removes_covered_segments(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path), segment_max_bytes=1)
    lsns = [wal.append_commit(ActionName((i,)), {"x": i}) for i in (1, 2, 3)]
    removed = wal.truncate_through(lsns[1])
    assert removed == 2  # segments for commits 1 and 2 are covered
    commits, _stats = wal.replay()
    assert [c.writes["x"] for c in commits] == [3]

    # LSNs keep ascending across reopen after truncation.
    wal.close()
    wal = WriteAheadLog(wal_dir(tmp_path))
    lsn4 = wal.append_commit(ActionName((4,)), {"x": 4})
    assert lsn4 > lsns[2]
    wal.close()


# ---------------------------------------------------------------------------
# Sync policies
# ---------------------------------------------------------------------------


def test_sync_batches_pending_commits(tmp_path):
    fsyncs = []
    wal = WriteAheadLog(wal_dir(tmp_path), fsync_fn=fsyncs.append)
    fsyncs.clear()  # ignore any fsync during open
    for i in (1, 2, 3):
        wal.append_commit(ActionName((i,)), {"x": i})
    last = wal.last_lsn
    assert wal.durable_lsn < last

    batched = wal.sync(last)
    assert batched == 3  # one fsync covered all three commits
    assert len(fsyncs) == 1
    assert wal.durable_lsn == last

    assert wal.sync(last) == 0  # already durable: no extra fsync
    assert len(fsyncs) == 1
    wal.close()


def test_group_policy_waits_the_window_then_syncs(tmp_path):
    sleeps = []
    wal = WriteAheadLog(
        wal_dir(tmp_path),
        sync_policy=SYNC_GROUP,
        group_window=0.004,
        sleep_fn=sleeps.append,
    )
    lsn = wal.append_commit(T1, {"x": 1})
    assert wal.sync(lsn) == 1
    assert sleeps == [0.004]  # leader held the window open before fsync
    assert wal.durable_lsn == lsn
    wal.close()


def test_none_policy_never_fsyncs(tmp_path):
    fsyncs = []
    wal = WriteAheadLog(
        wal_dir(tmp_path), sync_policy=SYNC_NONE, fsync_fn=fsyncs.append
    )
    fsyncs.clear()
    lsn = wal.append_commit(T1, {"x": 1})
    assert wal.sync(lsn) == 0
    assert fsyncs == []
    assert wal.durable_lsn < lsn
    wal.close()


def test_bad_sync_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadLog(wal_dir(tmp_path), sync_policy="eventually")


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


def test_checkpoint_write_latest_prune(tmp_path):
    cp = Checkpointer(str(tmp_path))
    assert cp.latest() is None
    first = cp.write(10, {"x": 1})
    second = cp.write(20, {"x": 2, "y": 3})
    assert (first.seq, second.seq) == (1, 2)

    latest = cp.latest()
    assert latest.seq == 2
    assert latest.lsn == 20
    assert latest.values == {"x": 2, "y": 3}

    assert cp.prune(keep=1) == 1
    assert [seq for seq, _path in cp.list()] == [2]
    # No temp files left behind by the atomic write protocol.
    assert not [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]


def test_corrupt_checkpoint_skipped(tmp_path):
    cp = Checkpointer(str(tmp_path))
    good = cp.write(10, {"x": 1})
    bad = cp.write(20, {"x": 2})
    with open(bad.path, "w", encoding="utf-8") as fh:
        fh.write('{"format": 1, "seq": 2')  # torn JSON
    latest = cp.latest()
    assert latest.seq == good.seq
    assert latest.values == {"x": 1}


# ---------------------------------------------------------------------------
# RecoveryManager (checkpoint overlay + log suffix)
# ---------------------------------------------------------------------------


def test_recovery_overlays_checkpoint_then_replays_suffix(tmp_path):
    d = str(tmp_path)
    wal = WriteAheadLog(d)
    wal.append_commit(T1, {"x": 1, "y": 1})
    lsn = wal.last_lsn
    Checkpointer(d).write(lsn, {"x": 1, "y": 1, "z": 0})
    wal.append_commit(T2, {"x": 2})
    wal.close()

    result = RecoveryManager(d).recover({"x": 0, "y": 0, "z": 0})
    assert result.values == {"x": 2, "y": 1, "z": 0}
    assert result.checkpoint_seq == 1
    assert result.checkpoint_lsn == lsn
    assert result.commits_replayed == 1  # only the suffix past the checkpoint
    assert result.clean


def test_recovery_on_empty_directory_is_identity(tmp_path):
    result = RecoveryManager(str(tmp_path)).recover({"x": 7})
    assert result.values == {"x": 7}
    assert result.checkpoint_seq == 0
    assert result.commits_replayed == 0
    assert result.clean


# ---------------------------------------------------------------------------
# Reopen truncates to the last complete batch
# ---------------------------------------------------------------------------


def test_reopen_drops_dangling_writes_so_reused_txn_name_commits(tmp_path):
    """Two-crash scenario: a crash mid-batch leaves individually-valid
    write frames without their commit frame; top-level txn names restart
    per process, so the next incarnation reuses the same name.  Reopening
    must truncate back to the last complete batch — otherwise the stale
    writes accumulate under the reused name, the commit record's count
    mismatches, and replay discards the fsync'd, acked batch."""
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    path = wal.segments[0]
    wal.close()

    # Crash mid-batch: T2's write frames reached disk, its commit did not.
    with open(path, "ab") as fh:
        fh.write(frame({"t": "w", "l": 98, "x": [2], "o": "x", "v": 666}))
        fh.write(frame({"t": "w", "l": 99, "x": [2], "o": "y", "v": 667}))

    # Next incarnation: reopen, reuse T2's name, commit and sync.
    wal = WriteAheadLog(wal_dir(tmp_path))
    lsn = wal.append_commit(T2, {"y": 9})
    assert lsn > 99  # dropped frames still advance the LSN (no reuse)
    wal.sync(lsn)
    wal.close()

    commits, stats = replay_commits(wal_dir(tmp_path))
    assert [(c.txn, c.writes) for c in commits] == [
        (T1, {"x": 1}),
        (T2, {"y": 9}),  # the acked commit survives
    ]
    assert stats.discarded_records == 0
    assert not stats.torn_tail


def test_reopen_truncates_dangling_writes_and_torn_frame_together(tmp_path):
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    path = wal.segments[0]
    wal.close()
    whole = os.path.getsize(path)

    with open(path, "ab") as fh:
        fh.write(frame({"t": "w", "l": 50, "x": [2], "o": "x", "v": 1}))
        fh.write(b"\x00\x00\x00\x09torn")  # torn frame after the writes

    wal = WriteAheadLog(wal_dir(tmp_path))
    # Truncated past both the torn frame and the batchless write frame.
    assert os.path.getsize(path) == whole
    wal.close()


def test_open_refuses_corrupt_non_final_segment(tmp_path):
    """A corrupt frame in a closed segment means recovery can never read
    anything after it; appending (and acking) new commits to such a log
    would silently lose them, so opening must fail loudly."""
    wal = WriteAheadLog(wal_dir(tmp_path))
    wal.append_commit(T1, {"x": 1})
    first = wal.segments[0]
    wal.rotate()
    wal.append_commit(T2, {"x": 2})
    wal.close()

    with open(first, "rb+") as fh:
        fh.seek(10)
        byte = fh.read(1)
        fh.seek(10)
        fh.write(bytes([byte[0] ^ 0xFF]))

    with pytest.raises(CorruptSegmentError):
        WriteAheadLog(wal_dir(tmp_path))


# ---------------------------------------------------------------------------
# fsync failure (fsyncgate) and leader-flag hygiene
# ---------------------------------------------------------------------------


def test_failed_fsync_poisons_the_log(tmp_path):
    """After a failed fsync the data may never reach disk even if a retry
    'succeeds', so sync() must not advance the durable horizon and every
    later sync() must keep failing rather than ack lost data."""
    calls = []

    def flaky_fsync(fd):
        calls.append(fd)
        raise OSError(5, "Input/output error")

    wal = WriteAheadLog(wal_dir(tmp_path), fsync_fn=flaky_fsync)
    durable_before = wal.durable_lsn
    lsn = wal.append_commit(T1, {"x": 1})
    with pytest.raises(OSError):
        wal.sync(lsn)
    assert wal.durable_lsn == durable_before  # never advanced
    assert wal.syncs == 0 and wal.synced_commits == 0
    assert wal._pending_commits == 1  # the batch went back to pending

    # Poisoned: even an fsync that would now "succeed" must not ack.
    wal._fsync_fn = lambda fd: None
    with pytest.raises(WalSyncError):
        wal.sync(lsn)
    assert wal.durable_lsn == durable_before
    wal._fsync_fn = lambda fd: None  # let close() fsync harmlessly
    wal.close()


def test_sleep_failure_releases_the_leader_without_poisoning(tmp_path):
    """If the group-window sleep raises (fake clock, KeyboardInterrupt),
    the leader flag must be cleared — otherwise every later sync() waits
    forever — but nothing failed on disk, so the log is not poisoned."""
    boom = [True]

    def sleep_once(seconds):
        if boom[0]:
            boom[0] = False
            raise RuntimeError("fake clock exploded")

    wal = WriteAheadLog(
        wal_dir(tmp_path), sync_policy=SYNC_GROUP, sleep_fn=sleep_once
    )
    lsn = wal.append_commit(T1, {"x": 1})
    with pytest.raises(RuntimeError):
        wal.sync(lsn)
    assert wal.durable_lsn < lsn
    # Not poisoned and not deadlocked: the retry becomes leader and syncs.
    assert wal.sync(lsn) == 1
    assert wal.durable_lsn == lsn
    wal.close()


def test_sync_during_rotation_storm(tmp_path):
    """Concurrent appends that rotate on every batch must not yank the
    active file handle out from under a syncing leader."""
    import threading

    wal = WriteAheadLog(wal_dir(tmp_path), segment_max_bytes=1)
    errors = []

    def committer(base):
        try:
            for i in range(25):
                lsn = wal.append_commit(ActionName((base + i,)), {"x": i})
                wal.sync(lsn)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=committer, args=(100 * t,)) for t in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    wal.close()
    commits, stats = replay_commits(wal_dir(tmp_path))
    assert len(commits) == 100
    assert not stats.torn_tail
