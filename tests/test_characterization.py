"""Theorem 9: data-serializability ⇔ version-compatibility + acyclicity.

Both directions are exercised: hand-built positive/negative instances, the
witness construction checked against the exact serializability search, and
a hypothesis-driven equivalence test against brute force on random AATs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ACTIVE,
    COMMITTED,
    ActionTree,
    AugmentedActionTree,
    U,
    Universe,
    add,
    find_data_serializing_order,
    find_sibling_data_cycle,
    first_version_incompatibility,
    is_data_serializable,
    is_serializable,
    is_serializing,
    is_version_compatible,
    read,
    write,
)


from repro.core import random_committed_aat


def build_aat(n_txns, n_objects, rng):
    """Shared random AAT generator (see repro.core.explorer)."""
    return random_committed_aat(rng, n_txns, n_objects)


class TestConditions:
    def test_version_compatible_positive(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1, t2 = U.child(1), U.child(2)
        universe.declare_access(t1.child(0), "x", write(3))
        universe.declare_access(t2.child(0), "x", read())
        status = {
            U: ACTIVE,
            t1: COMMITTED,
            t1.child(0): COMMITTED,
            t2: COMMITTED,
            t2.child(0): COMMITTED,
        }
        labels = {t1.child(0): 0, t2.child(0): 3}
        aat = AugmentedActionTree(
            ActionTree(universe, status, labels),
            {"x": (t1.child(0), t2.child(0))},
        )
        assert is_version_compatible(aat)
        assert first_version_incompatibility(aat) is None
        assert find_sibling_data_cycle(aat) is None
        assert is_data_serializable(aat)

    def test_version_incompatible(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t = U.child(1)
        universe.declare_access(t.child(0), "x", read())
        status = {U: ACTIVE, t: COMMITTED, t.child(0): COMMITTED}
        aat = AugmentedActionTree(
            ActionTree(universe, status, {t.child(0): 42}),
            {"x": (t.child(0),)},
        )
        assert not is_version_compatible(aat)
        step, expected, actual = first_version_incompatibility(aat)
        assert step == t.child(0)
        assert expected == 0
        assert actual == 42
        assert not is_data_serializable(aat)
        assert find_data_serializing_order(aat) is None

    def test_cycle_detected(self):
        """x ordered t1→t2 but y ordered t2→t1: sibling-data cycle."""
        universe = Universe()
        universe.define_object("x", init=0)
        universe.define_object("y", init=0)
        t1, t2 = U.child(1), U.child(2)
        universe.declare_access(t1.child(0), "x", add(1))
        universe.declare_access(t2.child(0), "x", add(1))
        universe.declare_access(t1.child(1), "y", add(1))
        universe.declare_access(t2.child(1), "y", add(1))
        status = {U: ACTIVE, t1: COMMITTED, t2: COMMITTED}
        labels = {}
        data = {
            "x": (t1.child(0), t2.child(0)),
            "y": (t2.child(1), t1.child(1)),
        }
        for access in [t1.child(0), t2.child(0), t2.child(1), t1.child(1)]:
            status[access] = COMMITTED
        # labels chosen version-compatible so only the cycle condition fails
        tree0 = ActionTree(universe, status, {a: 0 for a in data["x"] + data["y"]})
        probe = AugmentedActionTree(tree0, data)
        labels = {
            a: universe.result(universe.object_of(a), probe.v_data(a))
            for a in data["x"] + data["y"]
        }
        aat = AugmentedActionTree(ActionTree(universe, status, labels), data)
        assert is_version_compatible(aat)
        cycle = find_sibling_data_cycle(aat)
        assert cycle is not None
        assert set(cycle) == {t1, t2}
        assert not is_data_serializable(aat)


class TestWitness:
    def test_witness_is_serializing(self):
        rng = random.Random(5)
        found = 0
        for _ in range(30):
            aat = build_aat(3, 2, rng)
            order = find_data_serializing_order(aat)
            if order is None:
                continue
            found += 1
            assert is_serializing(aat.tree, order)
        assert found > 0

    def test_witness_respects_data_order(self):
        rng = random.Random(11)
        for _ in range(20):
            aat = build_aat(3, 2, rng)
            order = find_data_serializing_order(aat)
            if order is None:
                continue
            for a, b in aat.sibling_data_edges():
                family = order[a.parent()]
                assert family.index(a) < family.index(b)


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=80, deadline=None)
def test_theorem9_matches_brute_force(seed):
    """Data-serializability (poly) implies serializability (exact search);
    and on these flat-ish instances the converse of the label condition
    holds: a found serializing order consistent with data_T exists iff
    Theorem 9's conditions do."""
    rng = random.Random(seed)
    aat = build_aat(rng.randint(1, 3), rng.randint(1, 2), rng)
    by_theorem = is_data_serializable(aat)
    if by_theorem:
        # The witness must pass the exact definition of serializing.
        order = find_data_serializing_order(aat)
        assert order is not None
        assert is_serializing(aat.tree, order)
        assert is_serializable(aat.tree, budget=200_000)
    else:
        # Either labels are wrong for every data-consistent order, or a
        # cycle exists; verify via the exact search restricted to
        # data-consistent orders: no candidate both serializes and
        # respects data_T.
        from repro.core.serializability import _candidate_orders, sibling_families

        families = sibling_families(aat.tree)
        for order in _candidate_orders(families):
            if not is_serializing(aat.tree, order):
                continue
            respects = all(
                order[a.parent()].index(a) < order[a.parent()].index(b)
                for a, b in aat.sibling_data_edges()
            )
            assert not respects, "brute force found a data-consistent serializing order"
