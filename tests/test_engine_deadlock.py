"""Deadlock detection: the waits-for graph, nested-aware cycles, victim
policies, and live two-thread deadlocks."""

from __future__ import annotations

import threading

import pytest

from repro.core.naming import U
from repro.engine import (
    EngineConfig,
    DeadlockAbort,
    LockTimeout,
    NestedTransactionDB,
    REQUESTER,
    TransactionAborted,
    WaitsForGraph,
    YOUNGEST,
    choose_victim,
)

WAIT = 10.0


class TestWaitsForGraph:
    def test_simple_cycle(self):
        g = WaitsForGraph()
        a, b = U.child(1), U.child(2)
        g.set_waits(a, [b])
        g.set_waits(b, [a])
        chain = g.find_cycle_from(a)
        assert chain is not None
        assert chain[0] == a

    def test_no_cycle(self):
        g = WaitsForGraph()
        a, b, c = U.child(1), U.child(2), U.child(3)
        g.set_waits(a, [b])
        g.set_waits(b, [c])
        assert g.find_cycle_from(a) is None

    def test_three_party_cycle(self):
        g = WaitsForGraph()
        a, b, c = U.child(1), U.child(2), U.child(3)
        g.set_waits(a, [b])
        g.set_waits(b, [c])
        g.set_waits(c, [a])
        assert g.find_cycle_from(a) is not None

    def test_nested_cycle_through_ancestor(self):
        """c12 waits on T2 (top-level); T2's *descendant* waits on T1 —
        the classic nested deadlock a flat detector misses."""
        g = WaitsForGraph()
        t1, t2 = U.child(1), U.child(2)
        c12 = t1.child(2)
        c2x = t2.child(0)
        g.set_waits(c12, [t2])  # T1's child waits on T2's inherited lock
        g.set_waits(c2x, [t1])  # T2's child waits on T1's inherited lock
        chain = g.find_cycle_from(c12)
        assert chain is not None

    def test_wait_on_busy_holder_is_not_deadlock(self):
        g = WaitsForGraph()
        t1, t2 = U.child(1), U.child(2)
        g.set_waits(t1.child(0), [t2])
        assert g.find_cycle_from(t1.child(0)) is None

    def test_clear_and_remove(self):
        g = WaitsForGraph()
        a, b = U.child(1), U.child(2)
        g.set_waits(a, [b])
        g.set_waits(b, [a])
        g.remove_transaction(b)
        assert g.find_cycle_from(a) is None
        g.set_waits(a, [])
        assert len(g) == 0

    def test_victim_policies(self):
        cycle = [U.child(1), U.child(2).child(5), U.child(2)]
        assert choose_victim(cycle, REQUESTER, U.child(1)) == U.child(1)
        assert choose_victim(cycle, YOUNGEST, U.child(1)) == U.child(2).child(5)
        with pytest.raises(ValueError):
            choose_victim(cycle, "nonsense", U.child(1))


def force_two_party_deadlock(db):
    """t1 takes x then y; t2 takes y then x, with barriers so both hold
    their first lock before requesting the second.  Returns per-thread
    outcomes ('committed' or 'aborted')."""
    first_locks = threading.Barrier(2, timeout=WAIT)
    outcome = {}

    def actor(name, first, second):
        txn = db.begin_transaction()
        try:
            txn.write(first, 1)
            first_locks.wait()
            txn.write(second, 1)
            txn.commit()
            outcome[name] = "committed"
        except TransactionAborted:
            txn.abort()
            outcome[name] = "aborted"

    threads = [
        threading.Thread(target=actor, args=("t1", "x", "y"), daemon=True),
        threading.Thread(target=actor, args=("t2", "y", "x"), daemon=True),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT)
    return outcome


class TestLiveDeadlocks:
    def test_detection_breaks_deadlock(self):
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(lock_timeout=WAIT))
        outcome = force_two_party_deadlock(db)
        assert sorted(outcome.values()) == ["aborted", "committed"]
        assert db.stats.deadlocks >= 1

    def test_youngest_policy_also_resolves(self):
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(deadlock_policy=YOUNGEST, lock_timeout=WAIT))
        outcome = force_two_party_deadlock(db)
        assert "aborted" in outcome.values()
        assert "committed" in outcome.values()

    def test_timeout_fallback_without_detection(self):
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(detect_deadlocks=False, lock_timeout=0.3))
        first_locks = threading.Barrier(2, timeout=WAIT)
        outcome = {}

        def actor(name, first, second):
            txn = db.begin_transaction()
            try:
                txn.write(first, 1)
                first_locks.wait()
                txn.write(second, 1)
                txn.commit()
                outcome[name] = "committed"
            except LockTimeout:
                txn.abort()
                outcome[name] = "timeout"
            except TransactionAborted:
                txn.abort()
                outcome[name] = "aborted"

        threads = [
            threading.Thread(target=actor, args=("t1", "x", "y"), daemon=True),
            threading.Thread(target=actor, args=("t2", "y", "x"), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        assert "timeout" in outcome.values()

    def test_nested_deadlock_through_inherited_locks(self):
        """Each top-level's first child commits (lock inherited by the
        parent), then a second child requests the other object: the cycle
        runs through the *parents*, which only the nested-aware detector
        sees."""
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(lock_timeout=WAIT))
        holding = threading.Barrier(2, timeout=WAIT)
        outcome = {}

        def actor(name, mine, theirs):
            top = db.begin_transaction()
            try:
                with top.subtransaction() as first:
                    first.write(mine, 1)
                # lock on `mine` now retained by `top`
                holding.wait()
                with top.subtransaction() as second:
                    second.write(theirs, 2)
                top.commit()
                outcome[name] = "committed"
            except TransactionAborted:
                top.abort()
                outcome[name] = "aborted"

        threads = [
            threading.Thread(target=actor, args=("t1", "x", "y"), daemon=True),
            threading.Thread(target=actor, args=("t2", "y", "x"), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        assert db.stats.deadlocks >= 1
        assert "committed" in outcome.values()

    def test_deadlock_abort_carries_cycle(self):
        # Requester policy so the victim is the thread that detected the
        # cycle — the one positioned to observe DeadlockAbort directly.
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(deadlock_policy=REQUESTER, lock_timeout=WAIT))
        first_locks = threading.Barrier(2, timeout=WAIT)
        cycles = []

        def actor(first, second):
            txn = db.begin_transaction()
            try:
                txn.write(first, 1)
                first_locks.wait()
                txn.write(second, 1)
                txn.commit()
            except DeadlockAbort as exc:
                cycles.append(exc.cycle)
                txn.abort()
            except TransactionAborted:
                txn.abort()

        threads = [
            threading.Thread(target=actor, args=("x", "y"), daemon=True),
            threading.Thread(target=actor, args=("y", "x"), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT)
        assert cycles and len(cycles[0]) >= 2
