"""Model-based testing of the engine against a reference implementation.

A hypothesis state machine drives the real engine and a trivially-correct
*model* (nested dict overlays with parent-merge on commit and discard on
abort) through the same single-threaded command sequences.  Every read
must agree; every commit/abort must leave both worlds equal.  Shrinking
gives minimal failing command sequences if the engine's version stacks or
lock inheritance ever diverge.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.engine import NestedTransactionDB

OBJECTS = ["a", "b", "c"]


class ModelTransaction:
    """The reference semantics: one dict overlay per live transaction."""

    def __init__(self, parent: Optional["ModelTransaction"]) -> None:
        self.parent = parent
        self.overlay: Dict[str, int] = {}
        self.children: List["ModelTransaction"] = []
        self.open = True

    def read(self, base: Dict[str, int], obj: str) -> int:
        node: Optional[ModelTransaction] = self
        while node is not None:
            if obj in node.overlay:
                return node.overlay[obj]
            node = node.parent
        return base[obj]

    def write(self, obj: str, value: int) -> None:
        self.overlay[obj] = value

    def commit_into_parent(self, base: Dict[str, int]) -> None:
        self.open = False
        if self.parent is not None:
            self.parent.overlay.update(self.overlay)
        else:
            base.update(self.overlay)

    def abort(self) -> None:
        self.open = False
        for child in self.children:
            if child.open:
                child.abort()


class EngineVsModel(RuleBasedStateMachine):
    """Drive both worlds with the same commands and compare."""

    def __init__(self) -> None:
        super().__init__()
        initial = {obj: 0 for obj in OBJECTS}
        self.db = NestedTransactionDB(dict(initial))
        self.base = dict(initial)
        # Parallel stacks of open scopes, innermost last.
        self.real_stack = []
        self.model_stack: List[ModelTransaction] = []

    # -- commands -------------------------------------------------------------

    @rule()
    def begin(self) -> None:
        if not self.real_stack:
            self.real_stack.append(self.db.begin_transaction())
            self.model_stack.append(ModelTransaction(None))
        else:
            parent_model = self.model_stack[-1]
            child_model = ModelTransaction(parent_model)
            parent_model.children.append(child_model)
            self.real_stack.append(self.real_stack[-1].begin_subtransaction())
            self.model_stack.append(child_model)

    @precondition(lambda self: self.real_stack)
    @rule(obj=st.sampled_from(OBJECTS), value=st.integers(0, 99))
    def write(self, obj: str, value: int) -> None:
        self.real_stack[-1].write(obj, value)
        self.model_stack[-1].write(obj, value)

    @precondition(lambda self: self.real_stack)
    @rule(obj=st.sampled_from(OBJECTS))
    def read_agrees(self, obj: str) -> None:
        real = self.real_stack[-1].read(obj)
        model = self.model_stack[-1].read(self.base, obj)
        assert real == model, "read(%s): engine %r, model %r" % (obj, real, model)

    @precondition(lambda self: self.real_stack)
    @rule()
    def commit(self) -> None:
        self.real_stack.pop().commit()
        self.model_stack.pop().commit_into_parent(self.base)

    @precondition(lambda self: self.real_stack)
    @rule()
    def abort(self) -> None:
        self.real_stack.pop().abort()
        self.model_stack.pop().abort()

    @precondition(lambda self: len(self.real_stack) >= 2)
    @rule()
    def abort_outermost(self) -> None:
        """Abort the top-level transaction while scopes are open below —
        the orphan path."""
        self.real_stack[0].abort()
        self.model_stack[0].abort()
        self.real_stack.clear()
        self.model_stack.clear()

    # -- invariants -------------------------------------------------------------

    @invariant()
    def committed_state_agrees_when_quiescent(self) -> None:
        if not self.real_stack:
            assert self.db.snapshot() == self.base

    def teardown(self) -> None:
        while self.real_stack:
            self.real_stack.pop().abort()
            self.model_stack.pop().abort()
        assert self.db.snapshot() == self.base
        self.db.assert_quiescent()
        from repro.checker import check_engine

        assert check_engine(self.db).ok


EngineVsModelTest = EngineVsModel.TestCase
EngineVsModelTest.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
