"""Unit tests for action trees, visibility, and perm(T) (Sections 3.2-3.4)."""

from __future__ import annotations

import pytest

from repro.core import ABORTED, ACTIVE, COMMITTED, ActionTree, U, Universe, read, write


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("a"), "x", write(1))
    universe.declare_access(t2.child("b"), "x", read())
    return universe


@pytest.fixture
def tree(uni):
    """U active; t1 committed with committed access a; t2 active with
    active child b; t3 aborted."""
    t1, t2, t3 = U.child(1), U.child(2), U.child(3)
    status = {
        U: ACTIVE,
        t1: COMMITTED,
        t1.child("a"): COMMITTED,
        t2: ACTIVE,
        t2.child("b"): ACTIVE,
        t3: ABORTED,
    }
    return ActionTree(uni, status, {t1.child("a"): 0})


class TestStructure:
    def test_initial(self, uni):
        tree = ActionTree.initial(uni)
        assert tree.vertices == frozenset([U])
        assert tree.is_active(U)
        assert len(tree) == 1

    def test_status_queries(self, tree):
        t1 = U.child(1)
        assert tree.is_committed(t1)
        assert tree.is_done(t1)
        assert not tree.is_done(U.child(2))
        assert tree.is_aborted(U.child(3))
        assert tree.status(t1) == COMMITTED
        assert tree.status_or_none(U.child(99)) is None
        with pytest.raises(KeyError):
            tree.status(U.child(99))

    def test_partitions(self, tree):
        assert U in tree.active
        assert U.child(1) in tree.committed
        assert U.child(3) in tree.aborted
        assert tree.active | tree.committed | tree.aborted == tree.vertices

    def test_datasteps(self, tree):
        assert set(tree.datasteps()) == {U.child(1).child("a")}
        assert set(tree.datasteps_for("x")) == {U.child(1).child("a")}
        assert set(tree.accesses_in_tree()) == {
            U.child(1).child("a"),
            U.child(2).child("b"),
        }

    def test_children_in_tree(self, tree):
        assert set(tree.children_in_tree(U)) == {U.child(1), U.child(2), U.child(3)}
        assert set(tree.children_in_tree(U.child(2))) == {U.child(2).child("b")}

    def test_labels(self, tree):
        assert tree.label(U.child(1).child("a")) == 0
        assert tree.labels == {U.child(1).child("a"): 0}

    def test_validate_accepts_good_tree(self, tree):
        tree.validate()

    def test_validate_rejects_orphan_vertex(self, uni):
        bad = ActionTree(uni, {U: ACTIVE, U.child(1).child(2): ACTIVE}, {})
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_missing_label(self, uni):
        t1 = U.child(1)
        bad = ActionTree(
            uni, {U: ACTIVE, t1: ACTIVE, t1.child("a"): COMMITTED}, {}
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_label_on_active(self, uni):
        t1 = U.child(1)
        bad = ActionTree(
            uni,
            {U: ACTIVE, t1: ACTIVE, t1.child("a"): ACTIVE},
            {t1.child("a"): 0},
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_equality_and_hash(self, uni):
        a = ActionTree.initial(uni)
        b = ActionTree.initial(uni)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_created(U.child(1))
        assert a != 42

    def test_pretty(self, tree):
        text = tree.pretty()
        assert "U" in text
        assert "saw" in text


class TestVisibility:
    def test_self_visible(self, tree):
        for vertex in tree.vertices:
            assert tree.is_visible_to(vertex, vertex)

    def test_ancestors_visible(self, tree):
        b = U.child(2).child("b")
        assert tree.is_visible_to(U, b)
        assert tree.is_visible_to(U.child(2), b)

    def test_committed_chain_is_visible_across(self, tree):
        # t1 and its access committed, so both are visible to t2's subtree.
        b = U.child(2).child("b")
        assert tree.is_visible_to(U.child(1), b)
        assert tree.is_visible_to(U.child(1).child("a"), b)

    def test_active_sibling_not_visible(self, tree):
        # t2 is active, so t2's subtree is not visible to t1.
        assert not tree.is_visible_to(U.child(2), U.child(1))
        assert not tree.is_visible_to(U.child(2).child("b"), U.child(1))

    def test_aborted_not_visible_across(self, tree):
        assert not tree.is_visible_to(U.child(3), U.child(1))

    def test_non_vertex_never_visible(self, tree):
        assert not tree.is_visible_to(U.child(99), U)
        assert not tree.is_visible_to(U, U.child(99))

    def test_visible_set(self, tree):
        visible_to_u = tree.visible(U)
        assert U in visible_to_u
        assert U.child(1) in visible_to_u
        assert U.child(1).child("a") in visible_to_u
        assert U.child(2) not in visible_to_u  # active
        assert U.child(3) not in visible_to_u  # aborted

    def test_visible_datasteps(self, tree):
        b = U.child(2).child("b")
        assert tree.visible_datasteps(b, "x") == frozenset(
            [U.child(1).child("a")]
        )


class TestLiveness:
    def test_live_and_dead(self, tree):
        assert tree.is_live(U)
        assert tree.is_live(U.child(2).child("b"))
        assert tree.is_dead(U.child(3))
        # A (hypothetical) descendant of an aborted action is dead.
        assert tree.is_live(U.child(1))

    def test_descendant_of_aborted_is_dead(self, uni):
        t3 = U.child(3)
        status = {U: ACTIVE, t3: ABORTED, t3.child(1): ACTIVE}
        tree = ActionTree(uni, status, {})
        assert tree.is_dead(t3.child(1))


class TestPerm:
    def test_perm_keeps_committed_chain(self, tree):
        perm = tree.perm()
        assert U.child(1) in perm.vertices
        assert U.child(1).child("a") in perm.vertices
        assert U in perm.vertices

    def test_perm_drops_active_and_aborted(self, tree):
        perm = tree.perm()
        assert U.child(2) not in perm.vertices
        assert U.child(3) not in perm.vertices

    def test_perm_preserves_status_and_labels(self, tree):
        perm = tree.perm()
        assert perm.status(U.child(1)) == COMMITTED
        assert perm.label(U.child(1).child("a")) == 0

    def test_perm_is_a_tree(self, tree):
        perm = tree.perm()
        perm.validate()


class TestUpdates:
    def test_with_created(self, uni):
        tree = ActionTree.initial(uni).with_created(U.child(1))
        assert tree.is_active(U.child(1))

    def test_updates_do_not_mutate(self, uni):
        tree = ActionTree.initial(uni)
        tree.with_created(U.child(1))
        assert U.child(1) not in tree

    def test_with_performed(self, uni):
        t1a = U.child(1).child("a")
        tree = (
            ActionTree.initial(uni)
            .with_created(U.child(1))
            .with_created(t1a)
            .with_performed(t1a, 0)
        )
        assert tree.is_committed(t1a)
        assert tree.label(t1a) == 0
