"""The benchmark harness: table rendering, result emission, and system
builders."""

from __future__ import annotations

import os

import pytest

from repro.baselines import FlatLockingDB, GlobalLockDB, MVTODatabase
from repro.bench import SYSTEMS, Cell, Table, emit, make_system, run_cell
from repro.bench.reporting import _fmt
from repro.engine import NestedTransactionDB
from repro.workload import WorkloadConfig


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer-name", 123456)
        text = table.render()
        lines = text.split("\n")
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_add_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_dict(self):
        table = Table(["a", "b"])
        table.add_dict({"a": 1, "c": "ignored"})
        assert table.rows[0] == ["1", ""]

    def test_empty_table_renders_header(self):
        table = Table(["only"])
        assert "only" in table.render()

    def test_fmt(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1234"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0.001234) == "0.0012"
        assert _fmt("text") == "text"
        assert _fmt(7) == "7"


class TestEmit:
    def test_emit_writes_results_file(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        table = Table(["k"])
        table.add_row("v")
        emit("Test Emission 123", table, notes="a note")
        files = os.listdir(tmp_path)
        assert len(files) == 1
        content = open(os.path.join(str(tmp_path), files[0])).read()
        assert "Test Emission 123" in content
        assert "a note" in content


class TestSystems:
    def test_all_registered_systems_build(self):
        expected_types = {
            "moss-rw": NestedTransactionDB,
            "moss-striped": NestedTransactionDB,
            "moss-single": NestedTransactionDB,
            "moss-lazy": NestedTransactionDB,
            "moss-victim-requester": NestedTransactionDB,
            "moss-victim-youngest": NestedTransactionDB,
            "flat-2pl": FlatLockingDB,
            "global-lock": GlobalLockDB,
            "mvto": MVTODatabase,
        }
        assert set(SYSTEMS) == set(expected_types)
        for name, expected in expected_types.items():
            db = make_system(name, objects=4)
            assert isinstance(db, expected)
            assert len(db.initial_values) == 4

    def test_system_flags(self):
        assert make_system("moss-single", 2).single_mode
        assert make_system("moss-lazy", 2).lazy_lock_cleanup
        assert make_system("moss-victim-youngest", 2).deadlock_policy == "youngest"
        assert make_system("moss-striped", 2).latch_mode == "striped"
        assert make_system("moss-rw", 2).latch_mode == "global"

    def test_make_striped_system_stripe_count(self):
        from repro.bench import make_striped_system

        db = make_striped_system(objects=8, stripes=4)
        assert db.latch_mode == "striped"
        assert db.stripe_count == 4

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            make_system("quantum-db", 4)


class TestCells:
    def test_run_cell_end_to_end(self):
        report = run_cell(
            "moss-rw", threads=2, objects=8, programs=5, seed=1
        )
        assert report.committed_programs == 5
        assert report.duration > 0

    def test_cell_dataclass(self):
        cell = Cell("global-lock", WorkloadConfig(objects=4, programs=3, seed=2))
        report = cell.run()
        assert report.committed_programs == 3
