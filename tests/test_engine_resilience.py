"""Resilience: failure containment, recovery blocks, parallel children,
and orphan behaviour — the paper's motivating programming style."""

from __future__ import annotations

import threading

import pytest

from repro.engine import (
    FailureInjector,
    InjectedFailure,
    NestedTransactionDB,
    TransactionAborted,
    recovery_block,
    retry_subtransaction,
)


@pytest.fixture
def db():
    return NestedTransactionDB({"a": 0, "b": 0, "c": 0})


class TestContainment:
    def test_child_failure_leaves_parent_intact(self, db):
        with db.transaction() as t:
            t.write("a", 1)
            try:
                with t.subtransaction() as s:
                    s.write("a", 99)
                    s.write("b", 99)
                    raise ValueError("child blows up")
            except ValueError:
                pass
            assert t.read("a") == 1
            assert t.read("b") == 0
            t.write("c", 1)
        assert db.snapshot() == {"a": 1, "b": 0, "c": 1}

    def test_sibling_after_failed_sibling(self, db):
        with db.transaction() as t:
            try:
                with t.subtransaction() as s1:
                    s1.write("a", 5)
                    raise InjectedFailure()
            except InjectedFailure:
                pass
            with t.subtransaction() as s2:
                s2.write("b", s2.read("a") + 1)  # sees pre-failure value
        assert db.snapshot() == {"a": 0, "b": 1, "c": 0}

    def test_deep_failure_contained_at_right_level(self, db):
        with db.transaction() as t:
            with t.subtransaction() as mid:
                mid.write("a", 1)
                try:
                    with mid.subtransaction() as leaf:
                        leaf.write("b", 2)
                        raise InjectedFailure()
                except InjectedFailure:
                    pass
                assert mid.read("b") == 0
                assert mid.read("a") == 1
        assert db.snapshot()["a"] == 1


class TestRecoveryBlock:
    def test_first_alternate_wins(self, db):
        with db.transaction() as t:
            value = recovery_block(t, [lambda s: s.update("a", lambda v: v + 1)])
            assert value == 1
        assert db.snapshot()["a"] == 1

    def test_falls_through_to_backup(self, db):
        def primary(s):
            s.write("a", 100)
            raise InjectedFailure("primary path")

        def backup(s):
            s.write("b", 7)
            return "backup"

        with db.transaction() as t:
            assert recovery_block(t, [primary, backup]) == "backup"
        assert db.snapshot() == {"a": 0, "b": 7, "c": 0}

    def test_all_alternates_fail(self, db):
        def bad(_s):
            raise InjectedFailure()

        with pytest.raises(InjectedFailure):
            with db.transaction() as t:
                recovery_block(t, [bad, bad])

    def test_no_alternates(self, db):
        with pytest.raises(ValueError):
            with db.transaction() as t:
                recovery_block(t, [])

    def test_retry_subtransaction(self, db):
        attempts = []

        def flaky(s):
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFailure()
            s.write("a", len(attempts))
            return "ok"

        with db.transaction() as t:
            assert retry_subtransaction(t, flaky, attempts=5) == "ok"
        assert db.snapshot()["a"] == 3


class TestControlFlowEscapesContainment:
    """Regression: the combinators caught ``BaseException``, so a Ctrl-C
    (KeyboardInterrupt) or SystemExit inside an alternate was swallowed
    and the *next* alternate/retry ran instead of propagating.  Now the
    child is aborted and the non-``Exception`` error re-raised at once."""

    @pytest.mark.parametrize("error_type", [KeyboardInterrupt, SystemExit])
    def test_recovery_block_reraises_immediately(self, db, error_type):
        ran = []

        def interrupted(s):
            ran.append("primary")
            s.write("a", 100)
            raise error_type()

        def backup(s):
            ran.append("backup")
            s.write("b", 7)

        t = db.begin_transaction()
        with pytest.raises(error_type):
            recovery_block(t, [interrupted, backup])
        assert ran == ["primary"]  # the backup alternate never ran
        # The child was aborted (its write is gone), the parent survives.
        assert t.is_live
        t.commit()
        assert db.snapshot() == {"a": 0, "b": 0, "c": 0}

    @pytest.mark.parametrize("error_type", [KeyboardInterrupt, SystemExit])
    def test_retry_subtransaction_reraises_immediately(self, db, error_type):
        attempts = []

        def interrupted(s):
            attempts.append(1)
            s.write("a", 100)
            raise error_type()

        t = db.begin_transaction()
        with pytest.raises(error_type):
            retry_subtransaction(t, interrupted, attempts=5)
        assert attempts == [1]
        assert t.is_live
        t.commit()
        assert db.snapshot()["a"] == 0

    def test_policy_path_never_retries_interrupts(self, db):
        """Even a policy whose ``retryable`` names BaseException cannot
        resurrect a KeyboardInterrupt."""
        from repro.engine import RetryPolicy

        attempts = []

        def interrupted(_s):
            attempts.append(1)
            raise KeyboardInterrupt()

        policy = RetryPolicy(max_retries=5, backoff=0, retryable=(BaseException,))
        t = db.begin_transaction()
        with pytest.raises(KeyboardInterrupt):
            retry_subtransaction(t, interrupted, policy=policy)
        assert attempts == [1]
        t.abort()

    def test_ordinary_exceptions_still_contained(self, db):
        """The fix must not narrow classic containment: ValueError (not in
        ``retryable``) still falls through to the next alternate."""

        def bad(_s):
            raise ValueError("soft failure")

        def good(s):
            s.write("c", 3)
            return "ok"

        with db.transaction() as t:
            assert recovery_block(t, [bad, good]) == "ok"
        assert db.snapshot()["c"] == 3


class TestFailureInjector:
    def test_deterministic(self):
        a = FailureInjector(0.5, seed=42)
        b = FailureInjector(0.5, seed=42)
        outcomes_a, outcomes_b = [], []
        for injector, outcomes in [(a, outcomes_a), (b, outcomes_b)]:
            for _ in range(20):
                try:
                    injector.point("p")
                    outcomes.append(False)
                except InjectedFailure:
                    outcomes.append(True)
        assert outcomes_a == outcomes_b
        assert a.injected == b.injected > 0

    def test_zero_probability_never_fires(self):
        injector = FailureInjector(0.0)
        for _ in range(100):
            injector.point()
        assert injector.injected == 0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FailureInjector(1.5)


class TestParallelChildren:
    def test_outcomes_preserve_order(self, db):
        with db.transaction() as t:
            outcomes = t.parallel(
                [
                    lambda s: s.update("a", lambda v: v + 1),
                    lambda s: (_ for _ in ()).throw(InjectedFailure()),
                    lambda s: s.update("b", lambda v: v + 2),
                ]
            )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, InjectedFailure)
        assert db.snapshot() == {"a": 1, "b": 2, "c": 0}

    def test_parallel_siblings_share_parent_context(self, db):
        with db.transaction() as t:
            t.write("a", 10)
            outcomes = t.parallel(
                [lambda s: s.read("a"), lambda s: s.read("a")]
            )
        assert [o.value for o in outcomes] == [10, 10]

    def test_parallel_conflicting_children_serialize(self, db):
        with db.transaction() as t:
            outcomes = t.parallel(
                [lambda s: s.update("a", lambda v: v + 1) for _ in range(6)]
            )
        committed = sum(1 for o in outcomes if o.ok)
        assert db.snapshot()["a"] == committed
        # With conflicts among siblings, some may be deadlock victims, but
        # the majority must get through and the parent always survives.
        assert committed >= 1


class TestOrphans:
    def test_orphan_cannot_touch_data(self, db):
        t = db.begin_transaction()
        child = t.begin_subtransaction()
        t.abort()
        with pytest.raises(TransactionAborted):
            child.write("a", 1)
        assert db.snapshot()["a"] == 0

    def test_orphan_detected_while_waiting(self, db):
        blocker = db.begin_transaction()
        blocker.write("a", 1)
        parent = db.begin_transaction()
        child = parent.begin_subtransaction()
        released = threading.Event()
        result = {}

        def wait_for_lock():
            try:
                child.write("a", 2)  # blocks on `blocker`
                result["outcome"] = "acquired"
            except TransactionAborted:
                result["outcome"] = "aborted"
            released.set()

        thread = threading.Thread(target=wait_for_lock, daemon=True)
        thread.start()
        import time

        time.sleep(0.1)
        parent.abort()  # orphan the waiter
        assert released.wait(5)
        thread.join(5)
        assert result["outcome"] == "aborted"
        blocker.commit()
