"""Behavioral guarantees behind the E10 hot-path overhaul.

The optimizations (interned names, precomputed ancestor sets, deferred
trace publication, exact striped counters) must be *invisible*: every
test here pins an observable the fast paths could plausibly have bent.
"""

from __future__ import annotations

import io
import threading

from hypothesis import given
from hypothesis import strategies as st

from repro.core.naming import U
from repro.engine import EngineConfig, NestedTransactionDB
from repro.engine.locks import READ, WRITE, ObjectLocks
from repro.engine.retry import RetryPolicy
from repro.engine.trace import COMMIT, CREATE, PERFORM, TraceRecord, TraceRecorder
from repro.checker import check_engine


class TestConflictsWithFastPaths:
    def setup_method(self):
        self.t1 = U.child(1)
        self.t2 = U.child(2)
        self.t1c = self.t1.child(0)

    def test_empty_table_no_conflict(self):
        locks = ObjectLocks()
        assert locks.conflicts_with(self.t1, WRITE) == []
        assert locks.conflicts_with(self.t1, READ) == []

    def test_ancestor_set_agrees_with_path_walk(self):
        locks = ObjectLocks()
        locks.grant(self.t1, WRITE)
        locks.grant(self.t2, READ)
        ancestors = frozenset((U, self.t1))
        for mode in (READ, WRITE):
            with_set = locks.conflicts_with(self.t1c, mode, ancestors)
            without = locks.conflicts_with(self.t1c, mode)
            assert sorted(with_set) == sorted(without)

    def test_sole_holder_self_is_no_conflict(self):
        locks = ObjectLocks()
        locks.grant(self.t1, WRITE)
        assert locks.conflicts_with(self.t1, WRITE) == []

    def test_result_is_fresh_when_conflicting(self):
        # The conflict (slow) path must return a private list the caller
        # may keep: two calls must not alias each other's results.
        locks = ObjectLocks()
        locks.grant(self.t1, WRITE)
        first = locks.conflicts_with(self.t2, WRITE)
        locks.grant(U.child(3), WRITE)
        second = locks.conflicts_with(self.t2, WRITE)
        assert list(first) == [self.t1]
        assert len(second) == 2


class TestDeferredTracePublication:
    def test_out_of_order_publish_reads_sorted(self):
        rec = TraceRecorder()
        s0 = rec.reserve_seq()
        s1 = rec.reserve_seq()
        s2 = rec.reserve_seq()
        rec.publish(TraceRecord(CREATE, U.child(2), seq=s2))
        rec.publish(TraceRecord(CREATE, U.child(0), seq=s0))
        rec.publish(TraceRecord(CREATE, U.child(1), seq=s1))
        assert [r.seq for r in rec.records] == [s0, s1, s2]
        assert [r.txn for r in rec.records] == [U.child(0), U.child(1), U.child(2)]

    def test_dump_load_round_trip_preserves_sorted_order(self):
        rec = TraceRecorder()
        seqs = [rec.reserve_seq() for _ in range(4)]
        for s in reversed(seqs):
            rec.publish(
                TraceRecord(
                    PERFORM, U.child(s), U.child(s).child("r0"),
                    "x", "read", s, None, s,
                )
            )
        buffer = io.StringIO()
        rec.dump(buffer)
        buffer.seek(0)
        loaded = TraceRecorder.load(buffer)
        assert [r.seq for r in loaded.records] == seqs
        assert loaded.records == rec.records

    def test_convenience_api_equivalent_to_deferred(self):
        direct = TraceRecorder()
        direct.record_create(U.child(0))
        direct.record_commit(U.child(0))
        deferred = TraceRecorder()
        s0 = deferred.reserve_seq()
        s1 = deferred.reserve_seq()
        deferred.publish(TraceRecord(COMMIT, U.child(0), seq=s1))
        deferred.publish(TraceRecord(CREATE, U.child(0), seq=s0))
        assert direct.records == deferred.records

    def test_loaded_recorder_continues_sequence(self):
        rec = TraceRecorder()
        rec.record_create(U.child(0))
        buffer = io.StringIO()
        rec.dump(buffer)
        buffer.seek(0)
        loaded = TraceRecorder.load(buffer)
        assert loaded.reserve_seq() > rec.records[-1].seq

    @given(st.permutations(list(range(6))))
    def test_any_publication_order_reads_identically(self, order):
        rec = TraceRecorder()
        for _ in range(6):
            rec.reserve_seq()
        for s in order:
            rec.publish(TraceRecord(CREATE, U.child(s), seq=s))
        assert [r.seq for r in rec.records] == list(range(6))


def _exercise(db, threads=4, txns=12, ops=6):
    """Run a contended workload; return per-thread abort counts."""
    objects = list(db.objects)
    errors = []

    def worker(tid):
        import random

        rng = random.Random(tid)
        for t in range(txns):
            def body(txn):
                for i in range(ops):
                    obj = objects[rng.randrange(len(objects))]
                    if i % 2 == 0:
                        txn.read(obj)
                    else:
                        txn.write(obj, (tid, t, i))

            try:
                db.run_transaction(
                    body,
                    policy=RetryPolicy(max_retries=20),
                    sleep_fn=lambda _s: None,
                )
            except Exception as err:  # pragma: no cover - diagnostic
                errors.append(err)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for th in pool:
        th.start()
    for th in pool:
        th.join()
    return errors


class TestStripedCountersExact:
    def test_lifecycle_counters_balance_threaded(self):
        db = NestedTransactionDB({"x%d" % i: 0 for i in range(8)}, config=EngineConfig(latch_mode="striped", lock_timeout=5.0))
        errors = _exercise(db)
        assert not errors
        stats = db.stats
        # Every begun transaction resolved exactly one way; the engine's
        # counter bumps are each serialized (metadata latch for
        # lifecycle + deadlocks, stripe mutex for stripe-local data
        # counters), so totals are exact, not approximate.
        assert stats.begun == stats.committed + stats.aborted
        assert stats.reads + stats.writes > 0
        report = stats.snapshot()
        assert report["begun"] == stats.begun

    def test_data_counters_exact_single_thread(self):
        db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode="striped", record_trace=True))
        txn = db.begin_transaction()
        for _ in range(3):
            txn.read("a")
            txn.write("b", 1)
        txn.commit()
        assert db.stats.reads == 3
        assert db.stats.writes == 3
        assert db.stats.committed == 1

    def test_striped_trace_still_certifies(self):
        db = NestedTransactionDB({"x%d" % i: 0 for i in range(6)}, config=EngineConfig(latch_mode="striped", record_trace=True, lock_timeout=5.0))
        errors = _exercise(db, threads=3, txns=8, ops=4)
        assert not errors
        check_engine(db)
        # Quiescent trace: no seq gaps below the top reserved number.
        seqs = [r.seq for r in db.trace.records]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))


class TestAncestryCaches:
    def test_ancestor_names_and_lineage(self):
        db = NestedTransactionDB({"a": 0})
        top = db.begin_transaction()
        child = top.begin_subtransaction()
        grand = child.begin_subtransaction()
        assert top.ancestor_names == frozenset((U,))
        assert child.ancestor_names == frozenset((U, top.name))
        assert grand.ancestor_names == frozenset((U, top.name, child.name))
        assert [t.name for t in grand.lineage] == [
            grand.name,
            child.name,
            top.name,
        ]

    def test_caches_agree_with_name_ancestry(self):
        db = NestedTransactionDB({"a": 0})
        top = db.begin_transaction()
        child = top.begin_subtransaction()
        for anc in child.name.proper_ancestors():
            assert anc in child.ancestor_names
        assert len(child.ancestor_names) == child.name.depth


class TestGlobalModeUnchanged:
    def test_global_trace_certifies_and_sorted(self):
        db = NestedTransactionDB({"x%d" % i: 0 for i in range(6)}, config=EngineConfig(latch_mode="global", record_trace=True, lock_timeout=5.0))
        errors = _exercise(db, threads=3, txns=8, ops=4)
        assert not errors
        check_engine(db)
        seqs = [r.seq for r in db.trace.records]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
