"""The simulation chain: Lemmas 15/17/20/28 and Theorem 29 end-to-end,
plus the generic simulation machinery (Lemmas 1-4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Create,
    HomeAssignment,
    Level1Algebra,
    Level2Algebra,
    Level3Algebra,
    Level4Algebra,
    Level5Algebra,
    PossibilitiesViolation,
    RunConfig,
    SimulationViolation,
    U,
    Universe,
    add,
    check_local_mapping_lockstep,
    check_possibilities_lockstep,
    check_simulation,
    compose_interpretations,
    interpret_5_to_1,
    interpret_drop_locks,
    interpret_drop_messages,
    interpret_identity,
    interpret_sequence,
    local_mapping_5_to_4,
    mapping_2_to_1,
    project_run,
    random_run,
    random_scenario,
)
from repro.core.events import LoseLock, Receive, ReleaseLock, Send
from repro.core.summary import ActionSummary


class TestInterpretations:
    def test_identity(self):
        e = Create(U.child(1))
        assert interpret_identity(e) is e

    def test_drop_locks(self):
        assert interpret_drop_locks(ReleaseLock(U.child(1), "x")) is None
        assert interpret_drop_locks(LoseLock(U.child(1), "x")) is None
        assert interpret_drop_locks(Create(U.child(1))) is not None

    def test_drop_messages(self):
        assert interpret_drop_messages(Send(0, 1, ActionSummary())) is None
        assert interpret_drop_messages(Receive(0, ActionSummary())) is None
        assert interpret_drop_messages(ReleaseLock(U.child(1), "x")) is not None

    def test_composition_matches_lemma1(self):
        composed = compose_interpretations(
            interpret_drop_locks, interpret_drop_messages
        )
        assert composed(Send(0, 1, ActionSummary())) is None
        assert composed(ReleaseLock(U.child(1), "x")) is None
        assert composed(Create(U.child(1))) == Create(U.child(1))
        assert interpret_5_to_1(ReleaseLock(U.child(1), "x")) is None

    def test_interpret_sequence_deletes_nulls(self):
        events = [
            Create(U.child(1)),
            ReleaseLock(U.child(1), "x"),
            Create(U.child(2)),
        ]
        assert interpret_sequence(interpret_drop_locks, events) == [
            Create(U.child(1)),
            Create(U.child(2)),
        ]

    def test_project_run_levels(self):
        events = [
            Create(U.child(1)),
            Send(0, 0, ActionSummary()),
            ReleaseLock(U.child(1), "x"),
        ]
        assert len(project_run(events, 5)) == 3
        assert len(project_run(events, 4)) == 2
        assert len(project_run(events, 3)) == 2
        assert len(project_run(events, 2)) == 1
        assert len(project_run(events, 1)) == 1
        with pytest.raises(ValueError):
            project_run(events, 0)


def _level5_setup(seed):
    rng = random.Random(seed)
    scenario = random_scenario(rng, objects=3, toplevel=2)
    homes = HomeAssignment(scenario.universe, 3)
    algebra = Level5Algebra(scenario.universe, homes)
    events = random_run(algebra, scenario, rng, RunConfig(max_steps=250))
    return scenario, homes, algebra, events


class TestSimulationChain:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_level2_simulates_level1(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        level2 = Level2Algebra(scenario.universe)
        events = random_run(level2, scenario, rng)
        check_possibilities_lockstep(
            level2, Level1Algebra(scenario.universe), mapping_2_to_1(), events
        )

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_level5_local_mapping(self, seed):
        """Lemmas 23-27 / Figures 2-3 on random distributed runs."""
        scenario, homes, algebra, events = _level5_setup(seed)
        check_local_mapping_lockstep(
            algebra,
            Level4Algebra(scenario.universe),
            local_mapping_5_to_4(scenario.universe, homes),
            events,
        )

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=15, deadline=None)
    def test_theorem29_full_chain(self, seed):
        """Any valid level-5 run projects to valid runs at every level,
        including level 1 with the C-invariant enforced."""
        scenario, homes, algebra, events = _level5_setup(seed)
        check_simulation(
            algebra,
            Level4Algebra(scenario.universe),
            interpret_drop_messages,
            events,
        )
        level4_events = project_run(events, 4)
        check_simulation(
            Level4Algebra(scenario.universe),
            Level3Algebra(scenario.universe),
            interpret_identity,
            level4_events,
        )
        check_simulation(
            Level3Algebra(scenario.universe),
            Level2Algebra(scenario.universe),
            interpret_drop_locks,
            level4_events,
        )
        level1 = Level1Algebra(scenario.universe, check_invariant=True)
        assert level1.is_valid(project_run(events, 1))


class TestViolationDetection:
    """The checkers actually detect non-simulations (no vacuous passes)."""

    def test_simulation_violation_reported(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1 = U.child(1)
        universe.declare_access(t1.child("a"), "x", add(1))
        level2 = Level2Algebra(universe)
        level1 = Level1Algebra(universe)
        # Map every level-2 event to Create(t1): quickly invalid at level 1.
        bogus = lambda _e: Create(t1)
        events = [Create(t1), Create(t1.child("a"))]
        with pytest.raises(SimulationViolation) as exc:
            check_simulation(level2, level1, bogus, events)
        assert exc.value.step_index == 1

    def test_possibilities_clause_b_detected(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1 = U.child(1)
        universe.declare_access(t1.child("a"), "x", add(1))
        level2 = Level2Algebra(universe)
        level1 = Level1Algebra(universe)
        from repro.core import PossibilitiesMapping

        bad = PossibilitiesMapping(
            interpret=lambda _e: Create(t1),  # always the same image
            contains=lambda aat, tree: True,
            witness=lambda aat: Level1Algebra(universe).initial_state,
            name="bogus",
        )
        with pytest.raises(PossibilitiesViolation) as exc:
            check_possibilities_lockstep(
                level2, level1, bad, [Create(t1), Create(t1.child("a"))]
            )
        assert exc.value.clause == "b"

    def test_possibilities_clause_c_detected(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1 = U.child(1)
        level2 = Level2Algebra(universe)
        level1 = Level1Algebra(universe)
        from repro.core import PossibilitiesMapping

        picky = PossibilitiesMapping(
            interpret=interpret_identity,
            contains=lambda aat, tree: len(tree) == 1,  # only the trivial tree
            witness=lambda aat: Level1Algebra(universe).initial_state,
            name="picky",
        )
        with pytest.raises(PossibilitiesViolation) as exc:
            check_possibilities_lockstep(level2, level1, picky, [Create(t1)])
        assert exc.value.clause == "c"
