"""Executor failure paths.

Regression suite for the silent-worker-death bug: an unexpected exception
inside a worker thread (anything outside the contained
failure/abort/timeout protocol) used to kill the daemon thread silently —
the open transaction leaked (its locks stalling every other worker) and
``execute()`` returned a report that undercounted.  Workers now abort the
open transaction, count the program failed, and the first unexpected
error is re-raised after all workers join.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import NestedTransactionDB
from repro.engine.errors import UnknownObject
from repro.workload import Firing, execute
from repro.workload.executor import all_failure_points
from repro.workload.shapes import Block, Op, Program, flat


def _programs(count: int, obj: str = "a") -> list:
    return [flat([Op("rmw", obj, 1)], "p%d" % i) for i in range(count)]


class TestUnexpectedWorkerErrors:
    def test_error_is_reraised_after_join(self):
        db = NestedTransactionDB({"a": 0})
        bad = flat([Op("write", "missing", 1)], "bad")
        with pytest.raises(UnknownObject):
            execute(db, _programs(3) + [bad], threads=2, seed=0)

    def test_open_transaction_is_aborted_not_leaked(self):
        """Before the fix the poisoned worker's transaction stayed ACTIVE
        holding its locks: assert_quiescent failed and any later writer
        on the touched object stalled forever."""
        db = NestedTransactionDB({"a": 0, "b": 0})
        bad = Program(
            Block([Op("write", "a", 1), Op("write", "missing", 1)]), "bad"
        )
        with pytest.raises(UnknownObject):
            execute(db, [bad], threads=1, seed=0)
        db.assert_quiescent()  # nothing active, no locks held
        # The lock on "a" really is free: a fresh writer commits at once.
        db.run_transaction(lambda t: t.write("a", 7))
        assert db.snapshot()["a"] == 7

    def test_failed_program_is_counted_and_queue_drains(self):
        """The other workers keep draining the queue; the poisoned
        program lands in failed_programs (visible through counters even
        though the error propagates)."""
        db = NestedTransactionDB({"a": 0})
        bad = flat([Op("write", "missing", 1)], "bad")
        good = _programs(6)
        try:
            execute(db, [bad] + good, threads=2, seed=0)
        except UnknownObject:
            pass
        else:
            pytest.fail("expected UnknownObject to propagate")
        # All six good programs committed despite the poisoned first one.
        committed = db.snapshot()["a"]
        assert committed == 6
        db.assert_quiescent()

    def test_first_error_wins(self):
        """Multiple poisoned programs: exactly one (the first recorded)
        propagates; the run still terminates."""
        db = NestedTransactionDB({"a": 0})
        bad = [flat([Op("write", "missing", 1)], "bad%d" % i) for i in range(3)]
        with pytest.raises(UnknownObject):
            execute(db, bad, threads=3, seed=0)
        db.assert_quiescent()

    def test_clean_runs_unaffected(self):
        db = NestedTransactionDB({"a": 0})
        report = execute(db, _programs(5), threads=2, seed=0)
        assert report.committed_programs == 5
        assert report.failed_programs == 0
        db.assert_quiescent()


class TestFiringFactory:
    def test_factory_overrides_uniform_selection(self):
        """A firing_factory decides exactly which failure points fire —
        the chaos layer's entry point."""
        db = NestedTransactionDB({"a": 0, "b": 0})
        prog = Program(
            Block(
                [
                    Op("write", "a", 1),
                    Block([Op("write", "b", 2)], failure_point=True),
                ]
            ),
            "one-child",
        )

        def fire_everything(program: Program, index: int) -> Firing:
            return Firing({id(b) for b in all_failure_points(program)})

        report = execute(db, [prog], threads=1, firing_factory=fire_everything)
        assert report.injected == 1
        assert report.child_aborts == 1
        assert report.committed_programs == 1  # contained: parent commits
        assert db.snapshot() == {"a": 1, "b": 0}

    def test_factory_sees_program_and_index(self):
        db = NestedTransactionDB({"a": 0})
        seen = []
        lock = threading.Lock()

        def recorder(program: Program, index: int) -> Firing:
            with lock:
                seen.append((index, program.label))
            return Firing(set())

        execute(db, _programs(4), threads=2, firing_factory=recorder)
        assert sorted(seen) == [(i, "p%d" % i) for i in range(4)]
