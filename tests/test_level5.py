"""Level-5 distributed algebra ℬ (paper Section 9): summaries, homes,
local knowledge semantics, and the distributed-algebra locality laws."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    Abort,
    ActionSummary,
    Commit,
    Create,
    HomeAssignment,
    Level5Algebra,
    LoseLock,
    Perform,
    Receive,
    RunConfig,
    Send,
    U,
    Universe,
    random_run,
    random_scenario,
    read,
    write,
)
from repro.core.level5 import BUFFER


@pytest.fixture
def setting():
    """Two nodes: x at node 0, y at node 1; t1 homed at 0 with an access
    to each object; t2 homed at 1."""
    universe = Universe()
    universe.define_object("x", init=0)
    universe.define_object("y", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("wx"), "x", write(3))
    universe.declare_access(t1.child("wy"), "y", write(4))
    universe.declare_access(t2.child("rx"), "x", read())
    homes = HomeAssignment(
        universe,
        2,
        object_homes={"x": 0, "y": 1},
        action_homes={t1: 0, t2: 1},
    )
    return universe, homes, t1, t2


class TestHomeAssignment:
    def test_access_home_follows_object(self, setting):
        universe, homes, t1, _t2 = setting
        assert homes.home_of_action(t1.child("wx")) == 0
        assert homes.home_of_action(t1.child("wy")) == 1

    def test_origin(self, setting):
        universe, homes, t1, t2 = setting
        # top-level: origin = own home
        assert homes.origin(t1) == 0
        assert homes.origin(t2) == 1
        # children originate at the parent's home
        assert homes.origin(t1.child("wx")) == 0
        assert homes.origin(t1.child("wy")) == 0

    def test_root_has_no_home(self, setting):
        _universe, homes, _t1, _t2 = setting
        with pytest.raises(ValueError):
            homes.home_of_action(U)
        with pytest.raises(ValueError):
            homes.origin(U)

    def test_objects_at(self, setting):
        _universe, homes, _t1, _t2 = setting
        assert homes.objects_at(0) == ("x",)
        assert homes.objects_at(1) == ("y",)

    def test_default_assignment_is_deterministic(self, setting):
        universe, _homes, t1, _t2 = setting
        h1 = HomeAssignment(universe, 3)
        h2 = HomeAssignment(universe, 3)
        probe = U.child(7)
        assert h1.home_of_action(probe) == h2.home_of_action(probe)

    def test_access_home_override_rejected(self, setting):
        universe, _homes, t1, _t2 = setting
        with pytest.raises(ValueError):
            HomeAssignment(universe, 2, action_homes={t1.child("wx"): 1})


class TestActionSummary:
    def test_union_upgrades_status(self):
        a = ActionSummary({U.child(1): ACTIVE})
        b = ActionSummary({U.child(1): COMMITTED})
        assert a.union(b).is_committed(U.child(1))
        assert b.union(a).is_committed(U.child(1))

    def test_union_conflict_rejected(self):
        a = ActionSummary({U.child(1): COMMITTED})
        b = ActionSummary({U.child(1): ABORTED})
        with pytest.raises(ValueError):
            a.union(b)

    def test_containment(self):
        small = ActionSummary({U.child(1): ACTIVE})
        big = ActionSummary({U.child(1): COMMITTED, U.child(2): ACTIVE})
        assert small.contained_in(big)  # active ≼ any status present
        assert not big.contained_in(small)
        committed = ActionSummary({U.child(1): COMMITTED})
        assert not committed.contained_in(small)

    def test_knows_dead(self):
        s = ActionSummary({U.child(1): ABORTED})
        assert s.knows_dead(U.child(1).child(5))
        assert not s.knows_dead(U.child(2))


class TestLocalKnowledge:
    def test_create_requires_local_parent(self, setting):
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        state = algebra.initial_state
        # wy originates at node 0 (t1's home); its parent t1 is unknown there.
        assert not algebra.enabled(state, Create(t1.child("wy")))
        state = algebra.apply(state, Create(t1))
        assert algebra.enabled(state, Create(t1.child("wy")))

    def test_perform_needs_status_at_object_home(self, setting):
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        state = algebra.run([Create(t1), Create(t1.child("wy"))])
        # wy was created at node 0; node 1 (home of y) does not know it.
        failure = algebra.precondition_failure(state, Perform(t1.child("wy"), 0))
        assert "(d11)" in failure
        # Ship the knowledge: node 0 sends its summary toward node 1.
        summary = ActionSummary({t1.child("wy"): ACTIVE})
        state = algebra.run(
            [Send(0, 1, summary), Receive(1, summary)], start=state
        )
        assert algebra.enabled(state, Perform(t1.child("wy"), 0))

    def test_commit_blind_to_unknown_children(self, setting):
        """(b12) quantifies over *locally known* children: the home node
        may commit a parent whose remote child it never heard of — the
        paper's weak-knowledge semantics."""
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        summary = ActionSummary({t1.child("wy"): ACTIVE})
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("wy")),
                Send(0, 1, summary),
                Receive(1, summary),
                Perform(t1.child("wy"), 0),
            ]
        )
        # Node 0 knows the child wy (it created it there) and it is not
        # done at node 0 yet — commit blocked.
        assert not algebra.enabled(state, Commit(t1))
        # Deliver the perform result back to node 0.
        done = ActionSummary({t1.child("wy"): COMMITTED})
        state = algebra.run([Send(1, 0, done), Receive(0, done)], start=state)
        assert algebra.enabled(state, Commit(t1))

    def test_send_requires_containment(self, setting):
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        state = algebra.apply(algebra.initial_state, Create(t1))
        lie = ActionSummary({t1: COMMITTED})
        failure = algebra.precondition_failure(state, Send(0, 1, lie))
        assert "(g11)" in failure

    def test_receive_requires_channel_containment(self, setting):
        universe, homes, _t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        ghost = ActionSummary({U.child(9): ACTIVE})
        failure = algebra.precondition_failure(
            algebra.initial_state, Receive(0, ghost)
        )
        assert "(h11)" in failure

    def test_lose_lock_needs_local_death_knowledge(self, setting):
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        state = algebra.run(
            [Create(t1), Create(t1.child("wx")), Perform(t1.child("wx"), 0), Abort(t1)]
        )
        # Node 0 is home of both t1 and x, so it knows the abort directly.
        assert algebra.enabled(state, LoseLock(t1.child("wx"), "x"))

    def test_abort_applies_to_non_access_only(self, setting):
        universe, homes, t1, _t2 = setting
        algebra = Level5Algebra(universe, homes)
        state = algebra.run([Create(t1), Create(t1.child("wx"))])
        assert not algebra.enabled(state, Abort(t1.child("wx")))


class TestLocalityLaws:
    def test_doers(self, setting):
        universe, homes, t1, t2 = setting
        algebra = Level5Algebra(universe, homes)
        assert algebra.doer(Create(t1)) == 0
        assert algebra.doer(Create(t1.child("wy"))) == 0  # origin = parent home
        assert algebra.doer(Perform(t1.child("wy"), 0)) == 1  # object home
        assert algebra.doer(Commit(t1)) == 0
        assert algebra.doer(Send(1, 0, ActionSummary())) == 1
        assert algebra.doer(Receive(0, ActionSummary())) == BUFFER

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_local_domain_and_changes(self, seed):
        """The Local Domain / Local Changes laws of Section 2.3, spot
        checked by perturbing components other than the doer."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        homes = HomeAssignment(scenario.universe, 2)
        algebra = Level5Algebra(scenario.universe, homes)
        events = random_run(algebra, scenario, rng, RunConfig(max_steps=60))
        state = algebra.initial_state
        for event in events:
            doer = algebra.doer(event)
            # Perturb some *other* node's summary and check the laws.
            for other in algebra.components:
                if other == doer or other == BUFFER:
                    continue
                perturbed = state.with_node(
                    other,
                    state.node(other).__class__(
                        state.node(other).summary.with_status(
                            U.child(999), ACTIVE
                        ),
                        state.node(other).values,
                    ),
                )
                algebra.check_local_domain(state, perturbed, event)
                if algebra.enabled(state, event) and algebra.enabled(
                    perturbed, event
                ):
                    algebra.check_local_changes(state, perturbed, event, doer)
            state = algebra.apply(state, event)
