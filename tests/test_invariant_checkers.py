"""The lemma monitors themselves: they must reject violating instances
(no vacuous green), and check_along_run must walk prefixes."""

from __future__ import annotations


import pytest

from repro.checker import (
    InvariantViolation,
    check_along_run,
    check_lemma5,
    check_lemma6,
    check_lemma7,
    check_lemma10,
    check_lemma11,
    check_lemma16,
    check_lemma19,
)
from repro.core import (
    ACTIVE,
    COMMITTED,
    ActionTree,
    AugmentedActionTree,
    Create,
    Level2Algebra,
    Level3Algebra,
    U,
    Universe,
    VersionMap,
    add,
    read,
)
from repro.core.level3 import Level3State


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    universe.declare_access(U.child(1).child("a"), "x", add(1))
    universe.declare_access(U.child(2).child("b"), "x", read())
    return universe


class TestNegativeCases:
    def test_lemma10a_violation(self, uni):
        """Committed parent with an active child."""
        t1 = U.child(1)
        tree = ActionTree(
            uni, {U: ACTIVE, t1: COMMITTED, t1.child("a"): ACTIVE}, {}
        )
        aat = AugmentedActionTree(tree, {})
        with pytest.raises(InvariantViolation, match="10a"):
            check_lemma10(aat)

    def test_lemma10b_violation(self, uni):
        tree = ActionTree(uni, {U: COMMITTED}, {})
        aat = AugmentedActionTree(tree, {})
        with pytest.raises(InvariantViolation, match="10b"):
            check_lemma10(aat)

    def test_lemma10c_violation(self, uni):
        """A live data predecessor that is not visible to its successor."""
        t1, t2 = U.child(1), U.child(2)
        a, b = t1.child("a"), t2.child("b")
        tree = ActionTree(
            uni,
            {
                U: ACTIVE,
                t1: ACTIVE,  # live but uncommitted: a is invisible to b
                a: COMMITTED,
                t2: ACTIVE,
                b: COMMITTED,
            },
            {a: 0, b: 0},
        )
        aat = AugmentedActionTree(tree, {"x": (a, b)})
        with pytest.raises(InvariantViolation, match="10c"):
            check_lemma10(aat)

    def test_lemma11_violation_on_shrunk_tree(self, uni):
        bigger = AugmentedActionTree(
            ActionTree(uni, {U: ACTIVE, U.child(1): ACTIVE}, {}), {}
        )
        smaller = AugmentedActionTree(ActionTree.initial(uni), {})
        with pytest.raises(InvariantViolation, match="11a"):
            check_lemma11(bigger, smaller)

    def test_lemma16_violation_dangling_holder(self, uni):
        """A version-map holder that is not a vertex of the tree."""
        state = Level3State(
            AugmentedActionTree.initial(uni),
            VersionMap({"x": {U: (), U.child(1): ()}}),
        )
        with pytest.raises(InvariantViolation, match="16a"):
            check_lemma16(state, uni)

    def test_lemma16b_violation_unheld_live_step(self, uni):
        t1 = U.child(1)
        a = t1.child("a")
        tree = ActionTree(
            uni, {U: ACTIVE, t1: ACTIVE, a: COMMITTED}, {a: 0}
        )
        state = Level3State(
            AugmentedActionTree(tree, {"x": (a,)}),
            VersionMap.initial(uni.objects),  # nobody holds a's version
        )
        with pytest.raises(InvariantViolation, match="16b"):
            check_lemma16(state, uni)

    def test_lemma19_holds_for_valid_maps(self, uni):
        a = U.child(1).child("a")
        versions = VersionMap.initial(uni.objects).with_performed("x", a)
        check_lemma19(versions, uni)  # must not raise


class TestCheckAlongRun:
    def test_walks_all_prefixes(self, uni):
        algebra = Level2Algebra(uni)
        seen = []
        check_along_run(
            algebra,
            [Create(U.child(1)), Create(U.child(2))],
            lambda state: seen.append(len(state.tree.vertices)),
        )
        assert seen == [1, 2, 3]

    def test_propagates_check_failure(self, uni):
        algebra = Level2Algebra(uni)

        def check(state):
            if len(state.tree.vertices) > 1:
                raise InvariantViolation("too big")

        with pytest.raises(InvariantViolation):
            check_along_run(algebra, [Create(U.child(1))], check)

    def test_lemmas_pass_on_valid_level3_run(self, uni):
        algebra = Level3Algebra(uni)
        check_along_run(
            algebra,
            [Create(U.child(1)), Create(U.child(2))],
            lambda state: (
                check_lemma16(state, uni),
                check_lemma10(state.aat),
                check_lemma5(state.tree),
                check_lemma6(state.tree),
                check_lemma7(state.tree),
            ),
        )
