"""Property tests for Lemmas 5, 6, and 7 on random action trees."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    ActionTree,
    Level2Algebra,
    U,
    Universe,
    random_run,
    random_scenario,
)
from repro.checker import check_lemma5, check_lemma6, check_lemma7


@st.composite
def random_trees(draw):
    """Arbitrary well-formed action trees (statuses unconstrained beyond
    structure — the lemmas are about tree shape, not computability)."""
    universe = Universe()
    universe.define_object("x", init=0)
    status = {U: ACTIVE}
    n = draw(st.integers(min_value=1, max_value=12))
    vertices = [U]
    for _ in range(n):
        parent = draw(st.sampled_from(vertices))
        child = parent.child(len(vertices))
        vertices.append(child)
        status[child] = draw(st.sampled_from([ACTIVE, COMMITTED, ABORTED]))
    return ActionTree(universe, status, {})


@given(random_trees())
@settings(max_examples=150, deadline=None)
def test_lemma5_on_random_trees(tree):
    check_lemma5(tree)


@given(random_trees())
@settings(max_examples=150, deadline=None)
def test_lemma6_on_random_trees(tree):
    check_lemma6(tree)


@given(random_trees())
@settings(max_examples=150, deadline=None)
def test_lemma7_on_random_trees(tree):
    check_lemma7(tree)


@given(st.integers(min_value=0, max_value=40))
@settings(max_examples=30, deadline=None)
def test_lemmas_on_computable_level2_trees(seed):
    """The lemmas also hold along actual computations (not just arbitrary
    trees): check every prefix of a random level-2 run."""
    rng = random.Random(seed)
    scenario = random_scenario(rng, objects=3, toplevel=2, max_depth=3)
    algebra = Level2Algebra(scenario.universe)
    events = random_run(algebra, scenario, rng)
    state = algebra.initial_state
    for event in events:
        state = algebra.apply(state, event)
    check_lemma5(state.tree)
    check_lemma6(state.tree)
    check_lemma7(state.tree)
