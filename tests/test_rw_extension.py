"""Moss's complete algorithm — the read/write extension (paper §10).

Covers the mode-aware level-2 and level-4 algebras, the conflict-aware
characterization (Theorem 9 refined), the lock-dropping simulation
between them, and the engine's conformance to 𝒜'-RW.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_trace_level2rw
from repro.core import (
    Abort,
    Commit,
    Create,
    Level2Algebra,
    Level2RWAlgebra,
    Level4RWAlgebra,
    LoseLock,
    Perform,
    ReadLockTable,
    ReleaseLock,
    U,
    Universe,
    check_possibilities_lockstep,
    conflict_sibling_edges,
    find_rw_serializing_order,
    is_rw_serializable,
    is_serializing,
    mapping_4rw_to_2rw,
    random_committed_aat,
    random_run,
    random_scenario,
    read,
    write,
)
from repro.engine import NestedTransactionDB
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2, t3 = U.child(1), U.child(2), U.child(3)
    universe.declare_access(t1.child("r"), "x", read())
    universe.declare_access(t2.child("r"), "x", read())
    universe.declare_access(t3.child("w"), "x", write(5))
    return universe


class TestLevel2RW:
    def test_concurrent_sibling_reads_allowed(self, uni):
        """The whole point of the extension: two live top-level families
        may both read — forbidden at plain level 2 by (d12)."""
        t1, t2 = U.child(1), U.child(2)
        events = [
            Create(t1),
            Create(t1.child("r")),
            Perform(t1.child("r"), 0),
            Create(t2),
            Create(t2.child("r")),
            Perform(t2.child("r"), 0),
        ]
        assert Level2RWAlgebra(uni).is_valid(events)
        assert not Level2Algebra(uni).is_valid(events)

    def test_write_still_blocked_by_live_read(self, uni):
        t1, t3 = U.child(1), U.child(3)
        state = Level2RWAlgebra(uni).run(
            [Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0),
             Create(t3), Create(t3.child("w"))]
        )
        algebra = Level2RWAlgebra(uni)
        failure = algebra.precondition_failure(state, Perform(t3.child("w"), 0))
        assert "(d12-rw)" in failure
        # Commit the reader's chain and the write proceeds.
        state = algebra.apply(state, Commit(t1))
        assert algebra.enabled(state, Perform(t3.child("w"), 0))

    def test_read_blocked_by_live_write(self, uni):
        t2, t3 = U.child(2), U.child(3)
        algebra = Level2RWAlgebra(uni)
        state = algebra.run(
            [Create(t3), Create(t3.child("w")), Perform(t3.child("w"), 0),
             Create(t2), Create(t2.child("r"))]
        )
        failure = algebra.precondition_failure(state, Perform(t2.child("r"), 5))
        assert "(d12-rw)" in failure

    def test_d13_still_enforced(self, uni):
        t2, t3 = U.child(2), U.child(3)
        algebra = Level2RWAlgebra(uni)
        state = algebra.run(
            [Create(t3), Create(t3.child("w")), Perform(t3.child("w"), 0),
             Commit(t3), Create(t2), Create(t2.child("r"))]
        )
        failure = algebra.precondition_failure(state, Perform(t2.child("r"), 0))
        assert "(d13)" in failure
        assert algebra.enabled(state, Perform(t2.child("r"), 5))

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_theorem14_rw(self, seed):
        """Computability in 𝒜'-RW implies perm(T) rw-serializable, with a
        witness passing the exact serializing definition."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=3)
        algebra = Level2RWAlgebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        perm = algebra.run(events).perm()
        assert is_rw_serializable(perm)
        order = find_rw_serializing_order(perm)
        assert order is not None
        assert is_serializing(perm.tree, order)


class TestConflictCharacterization:
    def test_read_read_pairs_impose_no_edge(self, uni):
        from repro.core import ACTIVE, COMMITTED, ActionTree, AugmentedActionTree

        t1, t2 = U.child(1), U.child(2)
        status = {
            U: ACTIVE,
            t1: COMMITTED,
            t1.child("r"): COMMITTED,
            t2: COMMITTED,
            t2.child("r"): COMMITTED,
        }
        labels = {t1.child("r"): 0, t2.child("r"): 0}
        aat = AugmentedActionTree(
            ActionTree(uni, status, labels),
            {"x": (t1.child("r"), t2.child("r"))},
        )
        assert conflict_sibling_edges(aat) == set()
        assert aat.sibling_data_edges() == {(t1, t2)}

    def test_rw_weaker_than_data_serializable(self):
        """An AAT with a read-read 'cycle' is rw-serializable but not
        data-serializable: the refinement matters."""
        from repro.core import (
            ACTIVE,
            COMMITTED,
            ActionTree,
            AugmentedActionTree,
            is_data_serializable,
        )

        universe = Universe()
        universe.define_object("x", init=0)
        universe.define_object("y", init=0)
        t1, t2 = U.child(1), U.child(2)
        rx1, ry1 = t1.child(0), t1.child(1)
        rx2, ry2 = t2.child(0), t2.child(1)
        universe.declare_access(rx1, "x", read())
        universe.declare_access(ry1, "y", read())
        universe.declare_access(rx2, "x", read())
        universe.declare_access(ry2, "y", read())
        status = {U: ACTIVE, t1: COMMITTED, t2: COMMITTED}
        for a in (rx1, ry1, rx2, ry2):
            status[a] = COMMITTED
        labels = {a: 0 for a in (rx1, ry1, rx2, ry2)}
        # x ordered t1→t2 but y ordered t2→t1: a sibling-data cycle out of
        # pure reads.
        aat = AugmentedActionTree(
            ActionTree(universe, status, labels),
            {"x": (rx1, rx2), "y": (ry2, ry1)},
        )
        assert not is_data_serializable(aat)
        assert is_rw_serializable(aat)
        order = find_rw_serializing_order(aat)
        assert is_serializing(aat.tree, order)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_rw_implied_by_data_serializable(self, seed):
        rng = random.Random(seed)
        aat = random_committed_aat(rng, 3, 2)
        from repro.core import is_data_serializable

        if is_data_serializable(aat):
            assert is_rw_serializable(aat)


class TestReadLockTable:
    def test_grant_and_hold(self):
        table = ReadLockTable().with_granted("x", U.child(1))
        assert table.holds("x", U.child(1))
        assert not table.holds("x", U.child(2))
        assert table.holders("x") == frozenset([U.child(1)])

    def test_release_moves_to_parent(self):
        a = U.child(1).child(0)
        table = ReadLockTable().with_granted("x", a).with_released("x", a)
        assert not table.holds("x", a)
        assert table.holds("x", U.child(1))

    def test_lost_discards(self):
        a = U.child(1)
        table = ReadLockTable().with_granted("x", a).with_lost("x", a)
        assert table.holders("x") == frozenset()

    def test_equality(self):
        a = ReadLockTable().with_granted("x", U.child(1))
        b = ReadLockTable().with_granted("x", U.child(1))
        assert a == b and hash(a) == hash(b)
        assert a != ReadLockTable()


class TestLevel4RW:
    def test_read_does_not_take_write_holding(self, uni):
        t1 = U.child(1)
        algebra = Level4RWAlgebra(uni)
        state = algebra.run(
            [Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0)]
        )
        assert state.values.holders("x") == (U,)
        assert state.reads.holds("x", t1.child("r"))

    def test_concurrent_reads_then_blocked_write(self, uni):
        t1, t2, t3 = U.child(1), U.child(2), U.child(3)
        algebra = Level4RWAlgebra(uni)
        state = algebra.run(
            [
                Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0),
                Create(t2), Create(t2.child("r")), Perform(t2.child("r"), 0),
                Create(t3), Create(t3.child("w")),
            ]
        )
        failure = algebra.precondition_failure(state, Perform(t3.child("w"), 0))
        assert "read holder" in failure
        # Drive both readers' locks to the top; then the write goes.
        state = algebra.run(
            [
                ReleaseLock(t1.child("r"), "x"), Commit(t1), ReleaseLock(t1, "x"),
                ReleaseLock(t2.child("r"), "x"), Commit(t2), ReleaseLock(t2, "x"),
            ],
            start=state,
        )
        assert algebra.enabled(state, Perform(t3.child("w"), 0))

    def test_lose_lock_frees_dead_reader(self, uni):
        t1, t3 = U.child(1), U.child(3)
        algebra = Level4RWAlgebra(uni)
        state = algebra.run(
            [
                Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0),
                Abort(t1),
                LoseLock(t1.child("r"), "x"),
                Create(t3), Create(t3.child("w")),
            ]
        )
        assert algebra.enabled(state, Perform(t3.child("w"), 0))

    def test_release_requires_holding_something(self, uni):
        algebra = Level4RWAlgebra(uni)
        failure = algebra.precondition_failure(
            algebra.initial_state, ReleaseLock(U.child(1), "x")
        )
        assert "(e11)" in failure

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_simulates_level2rw(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level4RWAlgebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        check_possibilities_lockstep(
            algebra,
            Level2RWAlgebra(scenario.universe),
            mapping_4rw_to_2rw(),
            events,
        )


class TestLevel3RW:
    """The mode-aware information-retaining level (𝒜''-RW) and the
    factored chain 4RW → 3RW → 2RW."""

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_3rw_simulates_2rw(self, seed):
        from repro.core import Level3RWAlgebra, mapping_3rw_to_2rw

        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level3RWAlgebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        check_possibilities_lockstep(
            algebra,
            Level2RWAlgebra(scenario.universe),
            mapping_3rw_to_2rw(),
            events,
        )

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_4rw_simulates_3rw(self, seed):
        """The mode-aware analogue of the paper's non-singleton h''."""
        from repro.core import Level3RWAlgebra, mapping_4rw_to_3rw

        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level4RWAlgebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        check_possibilities_lockstep(
            algebra,
            Level3RWAlgebra(scenario.universe),
            mapping_4rw_to_3rw(scenario.universe),
            events,
        )

    def test_reads_never_enter_version_sequences(self, uni):
        from repro.core import Level3RWAlgebra

        t1 = U.child(1)
        algebra = Level3RWAlgebra(uni)
        state = algebra.run(
            [Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0)]
        )
        assert state.versions.holders("x") == (U,)
        assert state.versions.get("x", U) == ()
        assert state.reads.holds("x", t1.child("r"))

    def test_write_extends_principal_sequence(self):
        from repro.core import Level3RWAlgebra

        universe = Universe()
        universe.define_object("x", init=0)
        t3 = U.child(3)
        universe.declare_access(t3.child("w"), "x", write(5))
        algebra = Level3RWAlgebra(universe)
        state = algebra.run(
            [Create(t3), Create(t3.child("w")), Perform(t3.child("w"), 0)]
        )
        assert state.versions.get("x", t3.child("w")) == (t3.child("w"),)
        assert state.versions.principal_value("x", universe) == 5

    def test_witness_only_for_initial_state(self, uni):
        from repro.core import Level3RWAlgebra, mapping_4rw_to_3rw

        t1 = U.child(1)
        algebra = Level4RWAlgebra(uni)
        state = algebra.run([Create(t1), Create(t1.child("r")), Perform(t1.child("r"), 0)])
        # Reads do not break the witness (value map unchanged)…
        mapping = mapping_4rw_to_3rw(uni)
        witness = mapping.witness(state)
        assert mapping.contains(state, witness)
        # …but a write does: the initial version map no longer evals right.
        universe = Universe()
        universe.define_object("x", init=0)
        t3 = U.child(3)
        universe.declare_access(t3.child("w"), "x", write(5))
        algebra2 = Level4RWAlgebra(universe)
        state2 = algebra2.run(
            [Create(t3), Create(t3.child("w")), Perform(t3.child("w"), 0)]
        )
        mapping2 = mapping_4rw_to_3rw(universe)
        with pytest.raises(ValueError):
            mapping2.witness(state2)


class TestLevel5RW:
    """Moss's complete *distributed* algorithm: ℬ-RW."""

    def _setting(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1, t2 = U.child(1), U.child(2)
        universe.declare_access(t1.child("r"), "x", read())
        universe.declare_access(t2.child("r"), "x", read())
        from repro.core import HomeAssignment, Level5RWAlgebra

        homes = HomeAssignment(
            universe, 2, object_homes={"x": 0}, action_homes={t1: 0, t2: 1}
        )
        return universe, homes, Level5RWAlgebra(universe, homes), t1, t2

    def test_concurrent_remote_reads(self):
        """Two top-levels homed on different nodes both read x at its home
        concurrently — impossible in the single-mode ℬ."""
        from repro.core import ActionSummary, Level5Algebra, Receive, Send
        from repro.core.action_tree import ACTIVE

        universe, homes, algebra, t1, t2 = self._setting()
        ship = ActionSummary({t2: ACTIVE, t2.child("r"): ACTIVE})
        events = [
            Create(t1),
            Create(t1.child("r")),
            Perform(t1.child("r"), 0),
            Create(t2),
            Create(t2.child("r")),
            Send(1, 0, ship),
            Receive(0, ship),
            Perform(t2.child("r"), 0),
        ]
        assert algebra.is_valid(events)
        # The single-mode distributed algebra blocks the second read.
        single = Level5Algebra(universe, homes)
        assert not single.is_valid(events)

    def test_local_mapping_and_projection(self):
        import random as _random

        from repro.core import (
            HomeAssignment,
            Level2RWAlgebra as L2RW,
            Level4RWAlgebra as L4RW,
            Level5RWAlgebra,
            RunConfig,
            check_local_mapping_lockstep,
            is_rw_serializable as rw_ser,
            local_mapping_5rw_to_4rw,
            project_run,
            random_run as rrun,
            random_scenario as rscenario,
        )

        for seed in (3, 7):
            rng = _random.Random(seed)
            scenario = rscenario(rng, objects=3, toplevel=3)
            homes = HomeAssignment(scenario.universe, 3)
            algebra = Level5RWAlgebra(scenario.universe, homes)
            events = rrun(algebra, scenario, rng, RunConfig(max_steps=200))
            check_local_mapping_lockstep(
                algebra,
                L4RW(scenario.universe),
                local_mapping_5rw_to_4rw(scenario.universe, homes),
                events,
            )
            final = L2RW(scenario.universe).run(project_run(events, 2))
            assert rw_ser(final.perm())

    def test_read_lock_release_at_object_home(self):
        universe, homes, algebra, t1, _t2 = self._setting()
        events = [
            Create(t1),
            Create(t1.child("r")),
            Perform(t1.child("r"), 0),
            ReleaseLock(t1.child("r"), "x"),
        ]
        state = algebra.run(events)
        node = state.node(0)
        assert not node.reads.holds("x", t1.child("r"))
        assert node.reads.holds("x", t1)

    def test_release_requires_local_holding(self):
        universe, homes, algebra, t1, _t2 = self._setting()
        failure = algebra.precondition_failure(
            algebra.initial_state, ReleaseLock(t1, "x")
        )
        assert "(e11)" in failure


class TestEngineConformance:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_rw_engine_traces_are_level2rw_runs(self, seed):
        db = NestedTransactionDB(initial_values(10))
        cfg = WorkloadConfig(
            objects=10, theta=0.9, shape="bushy", programs=30, seed=seed
        )
        execute(db, WorkloadGenerator(cfg).programs(), threads=4, seed=seed)
        final = check_trace_level2rw(db.trace.records, db.initial_values)
        assert is_rw_serializable(final.perm())
