"""The serve layer: asyncio sessions over the batch submitter.

Covers the reactor-vs-CPU-pool contract end to end — async sessions
multiplexed over a small worker pool, batched begins/ops/commits against
both latch modes, compound-op expansion, the park/retry path for blocked
ops (targeted wake on commit, LockTimeout on expiry), error containment
in futures, and graceful degradation for backends without the batch
entry points.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.engine import EngineConfig, NestedTransactionDB
from repro.engine.errors import LockTimeout, TransactionAborted
from repro.obs import MetricsRegistry
from repro.serve import AsyncFrontend, BatchSubmitter

MODES = ("global", "striped")


def make_db(latch_mode="global", **kwargs):
    return NestedTransactionDB(
        {"x": 0, "y": 0, "z": 0},
        config=EngineConfig(latch_mode=latch_mode, **kwargs),
    )


def run(coro):
    return asyncio.run(coro)


# -- async sessions ----------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_session_context_manager_commits(mode):
    db = make_db(mode)

    async def main():
        async with AsyncFrontend(db, workers=2) as frontend:
            async with frontend.session() as s:
                await s.write("x", 7)
                await s.increment("y", 3)
                assert await s.read("x") == 7

    run(main())
    assert db.read_committed("x") == 7
    assert db.read_committed("y") == 3
    db.assert_quiescent()


@pytest.mark.parametrize("mode", MODES)
def test_session_aborts_on_error(mode):
    db = make_db(mode)

    async def main():
        async with AsyncFrontend(db, workers=2) as frontend:
            with pytest.raises(RuntimeError, match="boom"):
                async with frontend.session() as s:
                    await s.write("x", 99)
                    raise RuntimeError("boom")

    run(main())
    assert db.read_committed("x") == 0
    db.assert_quiescent()


def test_session_requires_begin():
    db = make_db()

    async def main():
        async with AsyncFrontend(db, workers=1) as frontend:
            s = frontend.session()
            with pytest.raises(RuntimeError, match="no active transaction"):
                await s.read("x")
            await s.begin()
            with pytest.raises(RuntimeError, match="already began"):
                await s.begin()
            await s.abort()
            await s.abort()  # idempotent after the transaction is gone

    run(main())


@pytest.mark.parametrize("mode", MODES)
def test_many_concurrent_sessions(mode):
    db = make_db(mode)
    sessions = 200

    async def one(frontend, i):
        async def body(s):
            await s.increment("x", 1)
            return await s.read("y")

        return await frontend.run_session(body)

    async def main():
        async with AsyncFrontend(db, workers=2, max_batch=32) as frontend:
            await asyncio.gather(
                *[one(frontend, i) for i in range(sessions)]
            )

    run(main())
    assert db.read_committed("x") == sessions
    db.assert_quiescent()


def test_run_session_retries_aborts():
    db = make_db()
    attempts = []

    async def body(s):
        attempts.append(1)
        if len(attempts) == 1:
            raise TransactionAborted(s.txn.name, "injected")
        await s.write("x", 42)

    async def main():
        async with AsyncFrontend(db, workers=1) as frontend:
            await frontend.run_session(body, backoff=0.0001)

    run(main())
    assert len(attempts) == 2
    assert db.read_committed("x") == 42


def test_run_session_gives_up_after_max_retries():
    db = make_db()

    async def body(s):
        raise TransactionAborted(s.txn.name, "always")

    async def main():
        async with AsyncFrontend(db, workers=1) as frontend:
            with pytest.raises(TransactionAborted):
                await frontend.run_session(body, max_retries=2, backoff=0)

    run(main())
    db.assert_quiescent()


@pytest.mark.parametrize("mode", MODES)
def test_rmw_and_single_mode_increment_expand(mode):
    # rmw always expands to read_for_update + write through the queue;
    # increment degenerates the same way on a single-mode engine.
    db = make_db(mode, single_mode=True)

    async def main():
        async with AsyncFrontend(db, workers=2) as frontend:
            async with frontend.session() as s:
                assert await s.rmw("x", 5) == 5
                await s.increment("x", 2)
            async with frontend.session() as s:
                assert await s.rmw("x", -3) == 4

    run(main())
    assert db.read_committed("x") == 4
    db.assert_quiescent()


def test_read_only_session():
    db = make_db()

    async def main():
        async with AsyncFrontend(db, workers=1) as frontend:
            async with frontend.session(read_only=True) as s:
                assert await s.read("x") == 0

    run(main())


# -- the submitter's park/retry path ----------------------------------------


@pytest.mark.parametrize("mode", MODES)
def test_blocked_op_parks_then_wakes_on_commit(mode):
    db = make_db(mode)
    sub = BatchSubmitter(db, workers=2, max_batch=16)
    try:
        holder = sub.submit_begin().result(timeout=5)
        sub.submit_op(holder, "read_for_update", "x").result(timeout=5)
        waiter = sub.submit_begin().result(timeout=5)
        blocked = sub.submit_op(waiter, "read_for_update", "x")
        # The conflicting request must park, not resolve and not consume
        # a worker thread (both workers stay free to run the commit).
        with pytest.raises(Exception):
            blocked.result(timeout=0.2)
        sub.submit_op(holder, "write", "x", 10).result(timeout=5)
        sub.submit_commit(holder).result(timeout=5)
        # The commit's targeted flush re-submits the parked op.
        assert blocked.result(timeout=5) == 10
        sub.submit_commit(waiter).result(timeout=5)
    finally:
        sub.close(timeout=5)
    db.assert_quiescent()


def test_blocked_op_wakes_on_abort():
    db = make_db()
    sub = BatchSubmitter(db, workers=2)
    try:
        holder = sub.submit_begin().result(timeout=5)
        sub.submit_op(holder, "write", "x", 5).result(timeout=5)
        waiter = sub.submit_begin().result(timeout=5)
        blocked = sub.submit_op(waiter, "read", "x")
        sub.submit_abort(holder).result(timeout=5)
        assert blocked.result(timeout=5) == 0  # aborted write rolled back
        sub.submit_commit(waiter).result(timeout=5)
    finally:
        sub.close(timeout=5)


def test_parked_op_times_out_with_lock_timeout():
    db = make_db(lock_timeout=0.3, detect_deadlocks=False)
    sub = BatchSubmitter(db, workers=2)
    try:
        holder = sub.submit_begin().result(timeout=5)
        sub.submit_op(holder, "write", "x", 1).result(timeout=5)
        waiter = sub.submit_begin().result(timeout=5)
        blocked = sub.submit_op(waiter, "read", "x")
        with pytest.raises(LockTimeout):
            blocked.result(timeout=5)
        # The timed-out waiter's waits-for edges were withdrawn — the
        # graph must not remember a request nobody is waiting on.
        assert not db._waits.has_waits(waiter.name)
        sub.submit_abort(waiter).result(timeout=5)
        sub.submit_commit(holder).result(timeout=5)
    finally:
        sub.close(timeout=5)


def test_deadlock_between_submitted_sessions_names_a_victim():
    db = make_db()
    sub = BatchSubmitter(db, workers=2)
    try:
        t1 = sub.submit_begin().result(timeout=5)
        t2 = sub.submit_begin().result(timeout=5)
        sub.submit_op(t1, "write", "x", 1).result(timeout=5)
        sub.submit_op(t2, "write", "y", 2).result(timeout=5)
        crossing_1 = sub.submit_op(t1, "read", "y")
        crossing_2 = sub.submit_op(t2, "read", "x")
        # One of the two must die as the deadlock victim; the other's
        # request then grants off the victim's released locks.
        results = []
        for future, txn in ((crossing_1, t1), (crossing_2, t2)):
            try:
                results.append(("ok", future.result(timeout=10), txn))
            except TransactionAborted:
                results.append(("aborted", None, txn))
        outcomes = sorted(status for status, _, _ in results)
        assert outcomes == ["aborted", "ok"]
        for status, _, txn in results:
            if status == "ok":
                sub.submit_commit(txn).result(timeout=5)
            else:
                sub.submit_abort(txn).result(timeout=5)
    finally:
        sub.close(timeout=5)
    db.assert_quiescent()


# -- submitter mechanics -----------------------------------------------------


def test_close_rejects_new_submissions():
    db = make_db()
    sub = BatchSubmitter(db, workers=1)
    sub.close(timeout=5)
    with pytest.raises(RuntimeError, match="closed"):
        sub.submit_begin()
    sub.close(timeout=5)  # idempotent


def test_submitter_validates_arguments():
    db = make_db()
    with pytest.raises(ValueError):
        BatchSubmitter(db, workers=0)
    with pytest.raises(ValueError):
        BatchSubmitter(db, workers=1, max_batch=0)
    sub = BatchSubmitter(db, workers=1)
    try:
        txn = sub.submit_begin().result(timeout=5)
        with pytest.raises(ValueError, match="unknown op kind"):
            sub.submit_op(txn, "frobnicate", "x")
        sub.submit_abort(txn).result(timeout=5)
    finally:
        sub.close(timeout=5)


def test_batch_metrics_recorded():
    db = make_db()
    registry = MetricsRegistry(enabled=True)

    async def main():
        async with AsyncFrontend(db, workers=2, metrics=registry) as frontend:
            async def body(s):
                await s.increment("x", 1)

            await asyncio.gather(
                *[frontend.run_session(body) for _ in range(50)]
            )

    run(main())
    snap = registry.snapshot()
    assert snap["counters"]["serve_ops_total"] >= 50
    assert snap["counters"]["serve_commits_total"] >= 50
    assert snap["counters"]["serve_batches_total"] > 0
    # Batching amortizes: strictly fewer latch crossings than operations.
    assert (
        snap["counters"]["serve_batches_total"]
        < snap["counters"]["serve_ops_total"]
        + snap["counters"]["serve_commits_total"]
    )
    assert snap["histograms"]["serve_batch_size"]["count"] > 0
    assert snap["histograms"]["serve_commit_batch_size"]["count"] > 0
    assert snap["histograms"]["serve_session_commit_seconds"]["count"] == 50


def test_errors_stay_contained_in_their_future():
    db = make_db()
    sub = BatchSubmitter(db, workers=1)
    try:
        txn = sub.submit_begin().result(timeout=5)
        sub.submit_abort(txn).result(timeout=5)
        # Operating on an aborted transaction errors — in its own future,
        # without poisoning the worker or neighbouring items.
        bad = sub.submit_op(txn, "write", "x", 1)
        good = sub.submit_begin()
        with pytest.raises(TransactionAborted):
            bad.result(timeout=5)
        other = good.result(timeout=5)
        sub.submit_op(other, "write", "y", 3).result(timeout=5)
        sub.submit_commit(other).result(timeout=5)
    finally:
        sub.close(timeout=5)
    assert db.read_committed("y") == 3


class _PlainBackend:
    """A minimal non-batched backend (the cluster coordinator surface):
    ``begin()`` plus per-op methods, no batch entry points."""

    def __init__(self):
        self.db = NestedTransactionDB({"x": 0}, config=EngineConfig())
        self.rmw_calls = 0

    def begin(self):
        backend = self

        class _Txn:
            def __init__(self):
                self.txn = backend.db.begin_transaction()

            def read(self, obj):
                return self.txn.read(obj)

            def read_for_update(self, obj):
                return self.txn.read_for_update(obj)

            def write(self, obj, value):
                return self.txn.write(obj, value)

            def increment(self, obj, delta):
                return self.txn.increment(obj, delta)

            def rmw(self, obj, delta):
                backend.rmw_calls += 1
                value = self.txn.read_for_update(obj) + delta
                self.txn.write(obj, value)
                return value

            def commit(self):
                return self.txn.commit()

            def abort(self):
                return self.txn.abort()

        return _Txn()


def test_unbatched_backend_degrades_to_per_op():
    backend = _PlainBackend()

    async def main():
        async with AsyncFrontend(backend, workers=2) as frontend:
            async with frontend.session() as s:
                await s.write("x", 1)
                assert await s.rmw("x", 4) == 5

    run(main())
    assert backend.rmw_calls == 1  # native rmw used, no expansion
    assert backend.db.read_committed("x") == 5


# -- engine batch entry points (what the submitter rides on) -----------------


@pytest.mark.parametrize("mode", MODES)
def test_begin_transaction_batch(mode):
    db = make_db(mode)
    txns = db.begin_transaction_batch(5)
    assert len(txns) == 5
    assert len({t.name for t in txns}) == 5
    for txn in txns:
        txn.abort()
    db.assert_quiescent()


@pytest.mark.parametrize("mode", MODES)
def test_try_perform_batch_statuses(mode):
    db = make_db(mode)
    holder = db.begin_transaction()
    holder.write("x", 1)
    other = db.begin_transaction()
    results = db.try_perform_batch(
        [
            (other, "read", "y", None),  # grants
            (other, "read", "x", None),  # conflicts with holder
        ]
    )
    assert results[0] == ("done", 0)
    assert results[1][0] == "blocked"
    holder.commit()
    (retry,) = db.try_perform_batch([(other, "read", "x", None)])
    assert retry == ("done", 1)
    other.commit()
    db.assert_quiescent()


@pytest.mark.parametrize("mode", MODES)
def test_commit_batch_group_commits(mode, tmp_path):
    db = NestedTransactionDB(
        {"x": 0, "y": 0},
        config=EngineConfig(latch_mode=mode, durability=str(tmp_path / mode)),
    )
    txns = db.begin_transaction_batch(4)
    for i, txn in enumerate(txns):
        (status, _) = db.try_perform_batch([(txn, "increment", "x", 1)])[0]
        assert status == "done"
    results = db.commit_batch(txns)
    assert all(status == "done" for status, _ in results)
    wal = db.durability.wal
    # One deferred fsync covered the whole batch.
    assert wal.synced_commits == 4
    assert wal.syncs < 4
    assert db.read_committed("x") == 4
    db.assert_quiescent()


@pytest.mark.parametrize("mode", MODES)
def test_cancel_waits_clears_batch_registered_edges(mode):
    db = make_db(mode)
    holder = db.begin_transaction()
    holder.write("x", 1)
    waiter = db.begin_transaction()
    (status, _) = db.try_perform_batch([(waiter, "read", "x", None)])[0]
    assert status == "blocked"
    assert db._waits.has_waits(waiter.name)
    db.cancel_waits(waiter)
    assert not db._waits.has_waits(waiter.name)
    holder.abort()
    waiter.abort()
    db.assert_quiescent()


def test_parked_retry_under_churn_makes_progress():
    """A writer pipeline over one hot object through the submitter: every
    session must eventually grant via park/flush, no lost increments."""
    db = make_db("striped")
    sub = BatchSubmitter(db, workers=3, max_batch=8)
    sessions = 30
    futures = []

    def one(i):
        txn = sub.submit_begin().result(timeout=10)
        for attempt in range(60):
            try:
                sub.submit_op(txn, "increment", "z", 1).result(timeout=10)
                sub.submit_commit(txn).result(timeout=10)
                return
            except TransactionAborted:
                sub.submit_abort(txn).result(timeout=10)
                txn = sub.submit_begin().result(timeout=10)
                time.sleep(0.001 * (attempt + 1))
        raise AssertionError("session %d starved" % i)

    try:
        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
    finally:
        sub.close(timeout=10)
    del futures
    assert db.read_committed("z") == sessions
    db.assert_quiescent()
