"""The observability subsystem: metrics registry exactness under
threads, event bus + sinks, stats parity across latch modes, engine
wiring, and the deprecated 1.0 surfaces."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.engine import (
    EngineConfig,
    FailureInjector,
    NestedTransactionDB,
    STATS_KEYS,
    TransactionAborted,
)
from repro.engine.locks import StripedLockTable
from repro.engine.retry import RetryPolicy
from repro.obs import (
    EVENT_KINDS,
    EventBus,
    JsonlFileSink,
    LockWaited,
    MetricsRegistry,
    ObservableStats,
    RingBufferSink,
    StderrPrettySink,
    TxnCommitted,
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("depth")
        gauge.set(3.5)
        assert gauge.value == 3.5
        live = registry.gauge("live", callback=lambda: 42)
        assert live.value == 42
        hist = registry.histogram("latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.05, 0.5, 2.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == pytest.approx(2.6)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["max"] == pytest.approx(2.0)
        assert snap["buckets"]["+Inf"] == 1

    def test_constructors_are_idempotent_keyed_by_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"stripe": "00"})
        b = registry.counter("c", labels={"stripe": "00"})
        c = registry.counter("c", labels={"stripe": "01"})
        plain = registry.counter("c")
        assert a is b
        assert a is not c and a is not plain
        a.inc()
        assert b.value == 1 and c.value == 0

    def test_percentiles_interpolate_within_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)  # all land in the (1, 2] bucket
        # Interpolation stays inside the bucket that holds the rank.
        assert 1.0 <= hist.percentile(0.5) <= 2.0
        assert 1.0 <= hist.percentile(0.99) <= 2.0
        assert hist.percentile(0.0) == 0.0 or hist.percentile(0.0) <= 2.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        assert MetricsRegistry().histogram("empty").percentile(0.95) == 0.0

    def test_disabled_timed_is_noop_and_shared(self):
        registry = MetricsRegistry(enabled=False)
        t1 = registry.timed("x")
        t2 = registry.timed("y")
        assert t1 is t2  # one shared no-op object, nothing allocated
        with t1:
            pass
        assert registry.snapshot()["histograms"] == {}
        registry.enable()
        with registry.timed("x"):
            pass
        assert registry.histogram("x").count == 1

    def test_render_text_prometheus_shape(self):
        registry = MetricsRegistry()
        registry.counter("commits_total").inc(3)
        registry.gauge("active").set(2)
        hist = registry.histogram("wait_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render_text()
        assert "# TYPE commits_total counter" in text
        assert "commits_total 3" in text
        assert "# TYPE active gauge" in text
        assert "# TYPE wait_seconds histogram" in text
        # Cumulative buckets, +Inf last, plus _sum/_count.
        assert 'wait_seconds_bucket{le="+Inf"} 2' in text
        assert "wait_seconds_count 2" in text
        assert "wait_seconds_sum" in text

    def test_eight_thread_hammer_totals_are_exact(self):
        """Satellite 4: 8 threads hammer one registry; counter totals and
        histogram count must equal the number of operations exactly."""
        registry = MetricsRegistry()
        counter = registry.counter("hammered_total")
        hist = registry.histogram("hammered_seconds")
        per_thread = 5000
        threads_n = 8
        start = threading.Barrier(threads_n)

        def worker(seed: int) -> None:
            start.wait()
            for i in range(per_thread):
                counter.inc()
                hist.observe((seed + i % 7) * 1e-4)

        workers = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert counter.value == threads_n * per_thread
        assert hist.count == threads_n * per_thread
        snap = hist.snapshot()
        assert sum(snap["buckets"].values()) == threads_n * per_thread


class TestEventBusAndSinks:
    def test_bus_disabled_until_sink_attached(self):
        bus = EventBus()
        assert not bus.enabled
        sink = bus.attach(RingBufferSink())
        assert bus.enabled
        bus.detach(sink)
        assert not bus.enabled

    def test_emit_stamps_ts_and_fans_out(self):
        bus = EventBus()
        ring = bus.attach(RingBufferSink(capacity=4))
        for i in range(6):
            bus.emit(TxnCommitted(txn="T%d" % i, objects=i))
        assert bus.emitted == 6
        assert ring.seen == 6
        assert len(ring) == 4  # ring keeps only the most recent
        assert all(e.ts is not None for e in ring.events)
        assert [e.objects for e in ring.of_kind("txn_committed")] == [2, 3, 4, 5]

    def test_sink_errors_are_contained_and_counted(self):
        class Exploding:
            def handle(self, event):
                raise RuntimeError("sink bug")

        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        bus.attach(Exploding())
        bus.emit(TxnCommitted(txn="T1"))  # must not raise
        assert bus.sink_errors == 1
        assert isinstance(bus.last_sink_error, RuntimeError)
        assert ring.seen == 1  # the healthy sink still got the event

    def test_jsonl_sink_roundtrip_non_ascii(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlFileSink(path)
        sink.handle(LockWaited(txn="T1", obj="café", mode="write", seconds=0.01))
        sink.close()
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        assert "café" in raw  # ensure_ascii off: stays readable
        record = json.loads(raw)
        assert record["kind"] == "lock_waited"
        assert record["obj"] == "café"

    def test_jsonl_sink_borrowed_stream_not_closed(self):
        buffer = io.StringIO()
        sink = JsonlFileSink(buffer)
        sink.handle(TxnCommitted(txn="T1"))
        sink.close()
        assert not buffer.closed
        assert sink.written == 1

    def test_stderr_pretty_sink_formats_one_line(self):
        buffer = io.StringIO()
        sink = StderrPrettySink(stream=buffer)
        event = TxnCommitted(txn="T1", objects=2)
        event.ts = 12.5
        sink.handle(event)
        line = buffer.getvalue()
        assert line.count("\n") == 1
        assert "txn_committed" in line and "objects=2" in line

    def test_event_taxonomy_is_complete(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS)) == 14
        assert "trace_record" in EVENT_KINDS


class TestStatsParity:
    @pytest.mark.parametrize("latch_mode", ["global", "striped"])
    def test_snapshot_schema_matches_stats_keys(self, latch_mode):
        """Satellite 2: both latch modes expose the exact same key set."""
        db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode=latch_mode))
        with db.transaction() as t:
            t.write("a", t.read("b") + 1)
        snap = db.stats.snapshot()
        assert tuple(snap) == STATS_KEYS
        assert snap["begun"] == snap["committed"] == 1
        assert snap["reads"] >= 1 and snap["writes"] >= 1

    def test_parity_across_modes_on_identical_workload(self):
        def run(latch_mode):
            db = NestedTransactionDB({"x": 0}, config=EngineConfig(latch_mode=latch_mode))
            for i in range(5):
                db.run_transaction(lambda t: t.write("x", t.read("x") + 1))
            return db.stats.snapshot()

        a, b = run("global"), run("striped")
        assert set(a) == set(b) == set(STATS_KEYS)
        # Single-threaded deterministic workload: lifecycle and data-path
        # counters agree exactly, not just structurally.
        assert a == b

    def test_striped_data_path_counters_reject_direct_writes(self):
        table = StripedLockTable(["a", "b"], n_stripes=2)
        stats = ObservableStats(table=table)
        with pytest.raises(AttributeError):
            stats.reads = 5
        stats.begun = 3  # lifecycle counters stay local in both modes
        assert stats.snapshot()["begun"] == 3

    def test_bind_mirrors_counters_as_gauges(self):
        registry = MetricsRegistry()
        stats = ObservableStats()
        stats.bind(registry)
        stats.committed = 7
        snap = registry.snapshot()
        assert snap["gauges"]["engine_stats_committed"] == 7
        assert "engine_stats_committed 7" in registry.render_text()


class TestRemovedAliases:
    def test_deprecated_stats_aliases_are_gone(self):
        """The PR-1 compatibility aliases completed their deprecation
        cycle; ObservableStats is the only stats surface."""
        import repro.engine as engine
        import repro.obs as obs

        for module in (engine, obs):
            assert not hasattr(module, "EngineStats")
            assert not hasattr(module, "StripedEngineStats")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_delay_and_retryable(self):
        policy = RetryPolicy(max_retries=3, backoff=0.01, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(3) == pytest.approx(0.03)
        assert policy.is_retryable(TransactionAborted(None, "x"))
        assert not policy.is_retryable(KeyError("x"))
        jittery = RetryPolicy(backoff=0.01, jitter=0.005)
        d = jittery.delay(2)
        assert 0.02 <= d <= 0.025


class TestEngineWiring:
    @pytest.mark.parametrize("latch_mode", ["global", "striped"])
    def test_commit_and_wait_metrics_populate(self, latch_mode):
        db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode=latch_mode, lock_timeout=5.0))
        db.metrics.enable()
        ring = db.events.attach(RingBufferSink(capacity=4096))
        db.run_transaction(lambda t: t.write("a", 1))

        # Force a real lock wait: a holder parks a second transaction.
        holder = db.begin_transaction()
        holder.write("b", 1)
        released = threading.Event()

        def waiter():
            db.run_transaction(lambda t: t.write("b", 2))
            released.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not released.wait(0.1)
        holder.commit()
        assert released.wait(5)
        thread.join(5)

        snap = db.metrics.snapshot()
        assert snap["histograms"]["engine_commit_seconds"]["count"] >= 3
        assert snap["histograms"]["engine_lock_wait_seconds"]["count"] >= 1
        kinds = {e.kind for e in ring.events}
        assert {"txn_begun", "txn_committed", "lock_waited"} <= kinds
        assert db.events.sink_errors == 0
        db.assert_quiescent()

    def test_aborts_emit_events(self):
        db = NestedTransactionDB({"a": 0})
        ring = db.events.attach(RingBufferSink())
        with pytest.raises(TransactionAborted):
            db.run_transaction(
                lambda t: (_ for _ in ()).throw(
                    TransactionAborted(t.name, "synthetic")
                ),
                policy=RetryPolicy(max_retries=1, backoff=0),
            )
        assert len(ring.of_kind("txn_aborted")) == 2

    def test_failure_injector_counts_and_emits(self):
        registry = MetricsRegistry()
        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        injector = FailureInjector(
            failure_prob=1.0, seed=1, metrics=registry, events=bus
        )
        from repro.engine import InjectedFailure

        with pytest.raises(InjectedFailure):
            injector.point("notify")
        assert registry.counter("injected_failures_total").value == 1
        assert ring.of_kind("failure_injected")[0].label == "notify"

    def test_disabled_registry_records_nothing(self):
        db = NestedTransactionDB({"a": 0})  # metrics disabled by default
        db.run_transaction(lambda t: t.write("a", 1))
        snap = db.metrics.snapshot()
        assert all(h["count"] == 0 for h in snap["histograms"].values())
        assert db.events.emitted == 0
