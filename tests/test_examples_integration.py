"""Integration: every shipped example and the ``python -m repro``
self-check must run clean end to end."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples")


def run_script(*args, timeout=180):
    return subprocess.run(
        [sys.executable, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO_ROOT,
    )


@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "oracle: ok=True"),
        ("banking.py", "oracle: serializable"),
        ("formal_walkthrough.py", "Theorem 9"),
        ("distributed_orders.py", "broadcast"),
    ],
)
def test_example_runs_clean(script, expected):
    result = run_script(os.path.join(EXAMPLES, script))
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_selfcheck_module():
    result = run_script("-m", "repro")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "all pillars verified" in result.stdout
    assert result.stdout.count("ok    ") == 5
