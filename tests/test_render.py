"""Rendering: run timelines and Graphviz DOT export."""

from __future__ import annotations

import io
import random

import pytest

from repro.core import (
    Commit,
    Create,
    Level2Algebra,
    Perform,
    U,
    Universe,
    random_run,
    random_scenario,
    render_run,
    render_timeline_by_transaction,
    to_dot,
    write,
    write_dot,
)


@pytest.fixture
def small_run():
    universe = Universe()
    universe.define_object("x", init=0)
    t1 = U.child(1)
    universe.declare_access(t1.child("w"), "x", write(5))
    events = [
        Create(t1),
        Create(t1.child("w")),
        Perform(t1.child("w"), 0),
        Commit(t1),
    ]
    algebra = Level2Algebra(universe)
    return algebra, events


class TestRunRendering:
    def test_render_run_lines(self, small_run):
        _algebra, events = small_run
        text = render_run(events)
        lines = text.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("0")
        assert "create" in lines[0]
        # Deeper actions are further indented.
        assert lines[1].index("create") > lines[0].index("create")

    def test_render_run_unnumbered(self, small_run):
        _algebra, events = small_run
        text = render_run(events, numbered=False)
        assert not text.split("\n")[0][0].isdigit()

    def test_timeline_groups_by_toplevel(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1, t2 = U.child(1), U.child(2)
        universe.declare_access(t1.child("w"), "x", write(1))
        events = [
            Create(t1),
            Create(t2),
            Create(t1.child("w")),
            Commit(t2),
        ]
        text = render_timeline_by_transaction(events)
        assert text.index("<1>") < text.index("<2>")
        # t1's section holds two events, t2's holds two.
        sections = text.split("<2>")
        assert "create" in sections[0]

    def test_empty_run(self):
        assert render_run([]) == ""


class TestDotExport:
    def test_dot_structure(self, small_run):
        algebra, events = small_run
        final = algebra.run(events)
        dot = to_dot(final, title="tiny run")
        assert dot.startswith("digraph")
        assert "tiny run" in dot
        assert "U ->" in dot
        assert "palegreen" in dot  # committed nodes colored
        assert "saw 0" in dot
        assert "style=dashed" not in dot or "label=" in dot

    def test_dot_includes_data_edges_for_aat(self):
        universe = Universe()
        universe.define_object("x", init=0)
        t1, t2 = U.child(1), U.child(2)
        universe.declare_access(t1.child("w"), "x", write(1))
        universe.declare_access(t2.child("w"), "x", write(2))
        algebra = Level2Algebra(universe)
        final = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Commit(t1),
                Create(t2),
                Create(t2.child("w")),
                Perform(t2.child("w"), 1),
            ]
        )
        dot = to_dot(final)
        assert "style=dashed" in dot  # the data order edge
        assert 'label="x"' in dot

    def test_dot_handles_plain_tree(self, small_run):
        algebra, events = small_run
        final = algebra.run(events)
        dot = to_dot(final.tree)
        assert "digraph" in dot

    def test_write_dot_to_stream_and_file(self, small_run, tmp_path):
        algebra, events = small_run
        final = algebra.run(events)
        buffer = io.StringIO()
        write_dot(final, buffer)
        assert buffer.getvalue().startswith("digraph")
        path = str(tmp_path / "tree.dot")
        write_dot(final, path)
        with open(path) as fh:
            assert fh.read().startswith("digraph")

    def test_dot_on_random_runs_never_crashes(self):
        for seed in range(5):
            rng = random.Random(seed)
            scenario = random_scenario(rng, objects=2, toplevel=2)
            algebra = Level2Algebra(scenario.universe)
            events = random_run(algebra, scenario, rng)
            final = algebra.run(events)
            dot = to_dot(final)
            # Every vertex appears as a node line.
            assert dot.count("fillcolor") == len(final.tree.vertices)
