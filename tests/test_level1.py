"""Unit tests for the level-1 specification algebra 𝒜 (paper Section 4)."""

from __future__ import annotations

import pytest

from repro.core import (
    Abort,
    Commit,
    Create,
    EventNotEnabledError,
    Level1Algebra,
    Perform,
    ReleaseLock,
    U,
    Universe,
    read,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(7))
    universe.declare_access(t2.child("r"), "x", read())
    return universe


@pytest.fixture
def algebra(uni):
    return Level1Algebra(uni)


class TestCreate:
    def test_create_toplevel(self, algebra):
        state = algebra.apply(algebra.initial_state, Create(U.child(1)))
        assert state.is_active(U.child(1))

    def test_create_requires_parent(self, algebra):
        assert not algebra.enabled(
            algebra.initial_state, Create(U.child(1).child("w"))
        )

    def test_create_twice_rejected(self, algebra):
        state = algebra.run([Create(U.child(1))])
        failure = algebra.precondition_failure(state, Create(U.child(1)))
        assert failure is not None
        assert "(a11)" in failure

    def test_create_under_committed_rejected(self, algebra):
        state = algebra.run([Create(U.child(1)), Commit(U.child(1))])
        failure = algebra.precondition_failure(state, Create(U.child(1).child("w")))
        assert "(a12)" in failure

    def test_create_under_aborted_allowed(self, algebra):
        """The paper explicitly allows creation under an aborted parent."""
        state = algebra.run([Create(U.child(1)), Abort(U.child(1))])
        assert algebra.enabled(state, Create(U.child(1).child("w")))

    def test_cannot_create_root(self, algebra):
        assert not algebra.enabled(algebra.initial_state, Create(U))


class TestCommitAbort:
    def test_commit_requires_active(self, algebra):
        state = algebra.run([Create(U.child(1)), Commit(U.child(1))])
        failure = algebra.precondition_failure(state, Commit(U.child(1)))
        assert "(b11)" in failure

    def test_commit_requires_children_done(self, algebra):
        t1 = U.child(1)
        state = algebra.run([Create(t1), Create(t1.child("w"))])
        failure = algebra.precondition_failure(state, Commit(t1))
        assert "(b12)" in failure

    def test_commit_after_children_performed(self, algebra):
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0)]
        )
        assert algebra.enabled(state, Commit(t1))

    def test_commit_of_access_rejected(self, algebra):
        t1 = U.child(1)
        state = algebra.run([Create(t1), Create(t1.child("w"))])
        assert not algebra.enabled(state, Commit(t1.child("w")))

    def test_abort_anytime_while_active(self, algebra):
        t1 = U.child(1)
        state = algebra.run([Create(t1), Create(t1.child("w"))])
        assert algebra.enabled(state, Abort(t1))  # children need not be done

    def test_abort_requires_active(self, algebra):
        state = algebra.run([Create(U.child(1)), Abort(U.child(1))])
        assert not algebra.enabled(state, Abort(U.child(1)))

    def test_root_never_commits_or_aborts(self, algebra):
        assert not algebra.enabled(algebra.initial_state, Commit(U))
        assert not algebra.enabled(algebra.initial_state, Abort(U))


class TestPerformAndInvariant:
    def test_perform_records_label(self, algebra):
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0)]
        )
        assert state.is_committed(t1.child("w"))
        assert state.label(t1.child("w")) == 0

    def test_perform_requires_access(self, algebra):
        state = algebra.run([Create(U.child(1))])
        assert not algebra.enabled(state, Perform(U.child(1), 0))

    def test_stale_read_is_serializable_by_reordering(self, algebra):
        """A read that saw the pre-write value is fine permanently: the
        reader serializes before the writer.  Level 1 is *much* more
        permissive than any locking implementation."""
        t1, t2 = U.child(1), U.child(2)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Commit(t1),
                Create(t2),
                Create(t2.child("r")),
                Perform(t2.child("r"), 0),  # stale, but consistent
            ]
        )
        assert algebra.enabled(state, Commit(t2))

    def test_implicit_C_blocks_impossible_commit(self, algebra):
        """A read that saw a value impossible under *any* sibling order
        (neither init 0 nor the written 7) may still perform while its
        parent is active (it is not permanent yet), but committing the
        parent would poison perm(T) and is rejected by the implicit C."""
        t1, t2 = U.child(1), U.child(2)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Commit(t1),
                Create(t2),
                Create(t2.child("r")),
            ]
        )
        # Perform with an impossible value is allowed — t2 is active, so
        # the bad label stays outside perm(T).
        assert algebra.enabled(state, Perform(t2.child("r"), 3))
        state = algebra.apply(state, Perform(t2.child("r"), 3))
        failure = algebra.precondition_failure(state, Commit(t2))
        assert failure is not None
        assert "implicit C" in failure
        # The doomed reader can still abort.
        assert algebra.enabled(state, Abort(t2))

    def test_invariant_can_be_disabled(self, uni):
        lax = Level1Algebra(uni, check_invariant=False)
        t1, t2 = U.child(1), U.child(2)
        events = [
            Create(t1),
            Create(t1.child("w")),
            Perform(t1.child("w"), 0),
            Commit(t1),
            Create(t2),
            Create(t2.child("r")),
            Perform(t2.child("r"), 3),
            Commit(t2),
        ]
        assert lax.is_valid(events)

    def test_label_domain_checked(self, uni):
        universe = Universe()
        universe.define_object("x", init=0, values=[0, 1])
        universe.declare_access(U.child(1).child("w"), "x", write(1))
        algebra = Level1Algebra(universe)
        state = algebra.run([Create(U.child(1)), Create(U.child(1).child("w"))])
        failure = algebra.precondition_failure(
            state, Perform(U.child(1).child("w"), 5)
        )
        assert "label" in failure

    def test_foreign_event_rejected(self, algebra):
        with pytest.raises(EventNotEnabledError):
            algebra.apply(algebra.initial_state, ReleaseLock(U.child(1), "x"))

    def test_run_helpers(self, algebra):
        events = [Create(U.child(1))]
        assert algebra.is_valid(events)
        assert algebra.first_invalid(events) is None
        bad = [Create(U.child(1)), Create(U.child(1))]
        index, reason = algebra.first_invalid(bad)
        assert index == 1
        assert "(a11)" in reason
