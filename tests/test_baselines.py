"""Baseline systems: flat strict 2PL, global lock, and MVTO."""

from __future__ import annotations

import threading

import pytest

from repro.baselines import FlatLockingDB, GlobalLockDB, MVTODatabase
from repro.engine import InvalidTransactionState, TransactionAborted, UnknownObject

WAIT = 5.0


class TestFlat2PL:
    def test_commit_and_abort(self):
        db = FlatLockingDB({"a": 0})
        with db.transaction() as t:
            t.write("a", 1)
        assert db.snapshot()["a"] == 1
        txn = db.begin_transaction()
        txn.write("a", 9)
        txn.abort()
        assert db.snapshot()["a"] == 1

    def test_undo_is_lifo(self):
        db = FlatLockingDB({"a": 0, "b": 0})
        txn = db.begin_transaction()
        txn.write("a", 1)
        txn.write("b", 2)
        txn.write("a", 3)
        txn.abort()
        assert db.snapshot() == {"a": 0, "b": 0}

    def test_no_containment(self):
        """A failure in a 'subtransaction' kills the whole transaction."""
        db = FlatLockingDB({"a": 0})
        txn = db.begin_transaction()
        txn.write("a", 5)
        with pytest.raises(TransactionAborted):
            with txn.subtransaction():
                raise RuntimeError("inner failure")
        assert txn.status == "aborted"
        assert db.snapshot()["a"] == 0

    def test_writer_blocks_reader(self):
        db = FlatLockingDB({"a": 0}, lock_timeout=WAIT)
        t1 = db.begin_transaction()
        t1.write("a", 1)
        got = threading.Event()
        result = {}

        def second():
            result["v"] = db.run_transaction(lambda t: t.read("a"))
            got.set()

        thread = threading.Thread(target=second, daemon=True)
        thread.start()
        assert not got.wait(0.15)
        t1.commit()
        assert got.wait(WAIT)
        assert result["v"] == 1

    def test_readers_share(self):
        db = FlatLockingDB({"a": 7}, lock_timeout=WAIT)
        t1 = db.begin_transaction()
        assert t1.read("a") == 7
        done = threading.Event()

        def second():
            assert db.run_transaction(lambda t: t.read("a")) == 7
            done.set()

        threading.Thread(target=second, daemon=True).start()
        assert done.wait(WAIT)
        t1.commit()

    def test_deadlock_detected(self):
        db = FlatLockingDB({"x": 0, "y": 0}, lock_timeout=WAIT)
        barrier = threading.Barrier(2, timeout=WAIT)
        outcome = {}

        def actor(name, first, second):
            txn = db.begin_transaction()
            try:
                txn.write(first, 1)
                barrier.wait()
                txn.write(second, 1)
                txn.commit()
                outcome[name] = "committed"
            except TransactionAborted:
                txn.abort()
                outcome[name] = "aborted"

        threads = [
            threading.Thread(target=actor, args=("t1", "x", "y"), daemon=True),
            threading.Thread(target=actor, args=("t2", "y", "x"), daemon=True),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert sorted(outcome.values()) == ["aborted", "committed"]
        assert db.stats.deadlocks >= 1

    def test_serializable_counter(self):
        db = FlatLockingDB({"c": 0})

        def worker():
            for _ in range(25):
                db.run_transaction(lambda t: t.write("c", t.read("c") + 1))

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.snapshot()["c"] == 100

    def test_misc_errors(self):
        db = FlatLockingDB({"a": 0})
        txn = db.begin_transaction()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.commit()
        txn2 = db.begin_transaction()
        with pytest.raises(UnknownObject):
            txn2.read("zzz")
        txn2.abort()


class TestGlobalLock:
    def test_serial_semantics(self):
        db = GlobalLockDB({"a": 0})
        with db.transaction() as t:
            t.write("a", 1)
            assert t.read("a") == 1
        assert db.snapshot()["a"] == 1

    def test_abort_restores(self):
        db = GlobalLockDB({"a": 0})
        txn = db.begin_transaction()
        txn.write("a", 5)
        txn.abort()
        assert db.snapshot()["a"] == 0

    def test_savepoint_contains_failure(self):
        db = GlobalLockDB({"a": 0, "b": 0})
        with db.transaction() as t:
            t.write("a", 1)
            with pytest.raises(RuntimeError):
                with t.subtransaction() as s:
                    s.write("b", 9)
                    raise RuntimeError("inner")
            assert t.read("b") == 0
            assert t.read("a") == 1
        assert db.snapshot() == {"a": 1, "b": 0}

    def test_transactions_serialize(self):
        db = GlobalLockDB({"c": 0})

        def worker():
            for _ in range(25):
                db.run_transaction(lambda t: t.write("c", t.read("c") + 1))

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.snapshot()["c"] == 100

    def test_operations_after_done_rejected(self):
        db = GlobalLockDB({"a": 0})
        txn = db.begin_transaction()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.read("a")


class TestMVTO:
    def test_basic_commit(self):
        db = MVTODatabase({"a": 0})
        with db.transaction() as t:
            t.write("a", 1)
            assert t.read("a") == 1  # reads own buffered write
        assert db.snapshot()["a"] == 1

    def test_abort_discards_buffer(self):
        db = MVTODatabase({"a": 0})
        txn = db.begin_transaction()
        txn.write("a", 9)
        txn.abort()
        assert db.snapshot()["a"] == 0

    def test_reads_see_snapshot_at_ts(self):
        db = MVTODatabase({"a": 0})
        old = db.begin_transaction()  # ts=1
        with db.transaction() as t2:  # ts=2, commits a=5 at ts 2
            t2.write("a", 5)
        # `old` started before t2 committed, so it must see the old value.
        assert old.read("a") == 0
        old.commit()

    def test_late_write_rejected(self):
        db = MVTODatabase({"a": 0})
        writer = db.begin_transaction()  # ts=1
        reader = db.begin_transaction()  # ts=2
        assert reader.read("a") == 0  # rts(version 0) = 2
        with pytest.raises(TransactionAborted):
            writer.write("a", 1)  # would invalidate reader's read
        assert db.stats.write_rejections == 1
        reader.commit()

    def test_validation_at_commit(self):
        db = MVTODatabase({"a": 0})
        writer = db.begin_transaction()  # ts=1
        writer.write("a", 1)  # buffered; rts still 0
        reader = db.begin_transaction()  # ts=2
        assert reader.read("a") == 0
        reader.commit()
        with pytest.raises(TransactionAborted):
            writer.commit()
        assert db.stats.validation_failures == 1

    def test_savepoint_rolls_back_writes(self):
        db = MVTODatabase({"a": 0, "b": 0})
        with db.transaction() as t:
            t.write("a", 1)
            with pytest.raises(RuntimeError):
                with t.subtransaction() as s:
                    s.write("b", 9)
                    raise RuntimeError("inner")
            assert t.read("b") == 0
            assert t.read("a") == 1
        assert db.snapshot() == {"a": 1, "b": 0}

    def test_counter_with_retries(self):
        db = MVTODatabase({"c": 0})

        def worker():
            for _ in range(25):
                db.run_transaction(lambda t: t.write("c", t.read("c") + 1))

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.snapshot()["c"] == 100

    def test_read_only_transactions_never_abort(self):
        db = MVTODatabase({"a": 0})
        for _ in range(10):
            with db.transaction() as t:
                t.read("a")
        assert db.stats.aborted == 0
