"""The generic event-state algebra framework (paper §2), exercised on a
deliberately tiny toy algebra so every code path is visible."""

from __future__ import annotations

import pytest

from repro.core import (
    Create,
    EventNotEnabledError,
    EventStateAlgebra,
    U,
    describe,
)
from repro.core.events import (
    Abort,
    Commit,
    LoseLock,
    Perform,
    Receive,
    ReleaseLock,
    Send,
    action_of,
)
from repro.core.summary import ActionSummary


class CounterAlgebra(EventStateAlgebra):
    """States are ints; Create(U.child(n)) adds n, enabled while state < cap.

    A deliberately silly algebra to test the framework plumbing without
    any transaction semantics in the way.
    """

    level = 0

    def __init__(self, cap: int = 10) -> None:
        self.cap = cap

    @property
    def initial_state(self) -> int:
        return 0

    def precondition_failure(self, state, event):
        if not isinstance(event, Create):
            return "only Create events exist here"
        if state >= self.cap:
            return "capped at %d" % self.cap
        return None

    def apply_effect(self, state, event):
        return state + event.action.leaf_label()


@pytest.fixture
def algebra():
    return CounterAlgebra(cap=10)


def ev(n):
    return Create(U.child(n))


class TestFrameworkMechanics:
    def test_run_and_trace(self, algebra):
        events = [ev(1), ev(2), ev(3)]
        assert algebra.run(events) == 6
        assert algebra.trace(events) == [0, 1, 3, 6]

    def test_run_from_start(self, algebra):
        assert algebra.run([ev(2)], start=5) == 7

    def test_apply_raises_outside_domain(self, algebra):
        with pytest.raises(EventNotEnabledError) as exc:
            algebra.apply(10, ev(1))
        assert "capped" in str(exc.value)
        assert exc.value.event == ev(1)
        assert exc.value.reason == "capped at 10"

    def test_is_valid(self, algebra):
        assert algebra.is_valid([ev(5), ev(5)])
        assert not algebra.is_valid([ev(5), ev(5), ev(1)])

    def test_first_invalid_pinpoints(self, algebra):
        index, reason = algebra.first_invalid([ev(4), ev(6), ev(1), ev(1)])
        assert index == 2
        assert "capped" in reason
        assert algebra.first_invalid([ev(1)]) is None

    def test_enabled_among_filters(self, algebra):
        candidates = [ev(1), Commit(U.child(1)), ev(2)]
        assert list(algebra.enabled_among(0, candidates)) == [ev(1), ev(2)]

    def test_enabled(self, algebra):
        assert algebra.enabled(0, ev(1))
        assert not algebra.enabled(10, ev(1))


class TestEventVocabulary:
    def test_action_of(self):
        assert action_of(Create(U.child(1))) == U.child(1)
        assert action_of(Perform(U.child(1), 5)) == U.child(1)
        assert action_of(ReleaseLock(U.child(1), "x")) == U.child(1)
        assert action_of(Send(0, 1, ActionSummary())) is None
        assert action_of(Receive(0, ActionSummary())) is None

    def test_describe_every_kind(self):
        samples = [
            Create(U.child(1)),
            Commit(U.child(1)),
            Abort(U.child(1)),
            Perform(U.child(1), 7),
            ReleaseLock(U.child(1), "x"),
            LoseLock(U.child(1), "x"),
            Send(0, 1, ActionSummary()),
            Receive(1, ActionSummary()),
        ]
        rendered = [describe(e) for e in samples]
        assert len(set(rendered)) == len(rendered)
        assert any("create" in r for r in rendered)
        assert any("release-lock" in r for r in rendered)

    def test_describe_rejects_non_events(self):
        with pytest.raises(TypeError):
            describe("not an event")

    def test_events_are_hashable_values(self):
        assert Create(U.child(1)) == Create(U.child(1))
        assert hash(Perform(U.child(1), 3)) == hash(Perform(U.child(1), 3))
        assert Create(U.child(1)) != Create(U.child(2))


class TestLocalityNegativeCases:
    """The Local Domain / Local Changes spot-checkers must reject their
    vacuous-premise misuse loudly."""

    def _setting(self):
        import random

        from repro.core import HomeAssignment, Level5Algebra, random_scenario

        scenario = random_scenario(random.Random(0), objects=2, toplevel=2)
        homes = HomeAssignment(scenario.universe, 2)
        return Level5Algebra(scenario.universe, homes), scenario

    def test_local_domain_requires_equal_doer_state(self):
        algebra, scenario = self._setting()
        state = algebra.initial_state
        action = scenario.all_actions[0]
        event = Create(action)
        changed = algebra.apply(state, event)  # differs at the doer
        with pytest.raises(ValueError):
            algebra.check_local_domain(state, changed, event)

    def test_local_changes_requires_enabled_in_both(self):
        algebra, scenario = self._setting()
        state = algebra.initial_state
        action = scenario.all_actions[0]
        event = Create(action)
        after = algebra.apply(state, event)  # event no longer enabled there
        with pytest.raises(ValueError):
            algebra.check_local_changes(after, after, event, algebra.doer(event))
