"""Level-3 algebra 𝒜'' with version maps (paper Section 7), Lemma 16,
and the simulation mapping h' (Lemma 17)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_lemma16
from repro.core import (
    Abort,
    Commit,
    Create,
    Level2Algebra,
    Level3Algebra,
    LoseLock,
    Perform,
    ReleaseLock,
    U,
    Universe,
    VersionMap,
    check_possibilities_lockstep,
    mapping_3_to_2,
    random_run,
    random_scenario,
    read,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(7))
    universe.declare_access(t2.child("r"), "x", read())
    return universe


@pytest.fixture
def algebra(uni):
    return Level3Algebra(uni)


class TestVersionMap:
    def test_initial(self, uni):
        vm = VersionMap.initial(uni.objects)
        assert vm.defined("x", U)
        assert vm.get("x", U) == ()
        assert vm.principal_action("x") == U
        assert vm.principal_value("x", uni) == 0
        vm.validate(uni)

    def test_perform_extends_principal(self, uni):
        w = U.child(1).child("w")
        vm = VersionMap.initial(uni.objects).with_performed("x", w)
        assert vm.get("x", w) == (w,)
        assert vm.principal_action("x") == w
        assert vm.principal_value("x", uni) == 7

    def test_release_passes_to_parent(self, uni):
        w = U.child(1).child("w")
        vm = VersionMap.initial(uni.objects).with_performed("x", w)
        vm = vm.with_released("x", w)
        assert not vm.defined("x", w)
        assert vm.get("x", U.child(1)) == (w,)
        vm.validate(uni)

    def test_lose_discards(self, uni):
        w = U.child(1).child("w")
        vm = VersionMap.initial(uni.objects).with_performed("x", w)
        vm = vm.with_lost("x", w)
        assert not vm.defined("x", w)
        assert vm.principal_action("x") == U
        vm.validate(uni)

    def test_validate_rejects_non_chain(self, uni):
        bad = VersionMap({"x": {U: (), U.child(1): (), U.child(2): ()}})
        with pytest.raises(ValueError):
            bad.validate(uni)

    def test_validate_rejects_non_extension(self, uni):
        w = U.child(1).child("w")
        bad = VersionMap({"x": {U: (w,), U.child(1): ()}})
        with pytest.raises(ValueError):
            bad.validate(uni)

    def test_validate_requires_root_entry(self, uni):
        bad = VersionMap({"x": {U.child(1): ()}})
        with pytest.raises(ValueError):
            bad.validate(uni)

    def test_equality(self, uni):
        a = VersionMap.initial(uni.objects)
        b = VersionMap.initial(uni.objects)
        assert a == b and hash(a) == hash(b)
        assert a != a.with_performed("x", U.child(1).child("w"))


class TestEvents:
    def test_perform_requires_ancestor_holders(self, algebra):
        """After t1's write, the lock is held by the access itself; t2's
        read is blocked until releases move it up to U."""
        t1, t2 = U.child(1), U.child(2)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Commit(t1),
                Create(t2),
                Create(t2.child("r")),
            ]
        )
        failure = algebra.precondition_failure(state, Perform(t2.child("r"), 7))
        assert "(d12)" in failure

    def test_perform_after_release_chain(self, algebra):
        t1, t2 = U.child(1), U.child(2)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                ReleaseLock(t1.child("w"), "x"),  # access → t1
                Commit(t1),
                ReleaseLock(t1, "x"),  # t1 → U
                Create(t2),
                Create(t2.child("r")),
            ]
        )
        assert algebra.enabled(state, Perform(t2.child("r"), 7))
        # (d13): only the principal value is acceptable.
        failure = algebra.precondition_failure(state, Perform(t2.child("r"), 0))
        assert "(d13)" in failure

    def test_release_requires_commit(self, algebra):
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0), Create(U.child(2))]
        )
        # t1 (holder's parent) not committed, but the access itself is
        # committed by perform, so the access can release.
        assert algebra.enabled(state, ReleaseLock(t1.child("w"), "x"))
        state = algebra.apply(state, ReleaseLock(t1.child("w"), "x"))
        # Now t1 holds; t1 is active, so it cannot release...
        failure = algebra.precondition_failure(state, ReleaseLock(t1, "x"))
        assert "(e12)" in failure
        # ...and cannot lose (it is live).
        failure = algebra.precondition_failure(state, LoseLock(t1, "x"))
        assert "(f12)" in failure

    def test_lose_lock_when_dead(self, algebra):
        t1 = U.child(1)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Abort(t1),
            ]
        )
        # The access holds the lock and is dead via its ancestor.
        assert algebra.enabled(state, LoseLock(t1.child("w"), "x"))
        state = algebra.apply(state, LoseLock(t1.child("w"), "x"))
        assert state.versions.principal_action("x") == U

    def test_release_undefined_lock_rejected(self, algebra):
        failure = algebra.precondition_failure(
            algebra.initial_state, ReleaseLock(U.child(1), "x")
        )
        assert "(e11)" in failure


class TestLemma16AndSimulation:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_lemma16_along_runs(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level3Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        state = algebra.initial_state
        for event in events:
            state = algebra.apply(state, event)
            check_lemma16(state, scenario.universe)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_h_prime_is_a_possibilities_mapping(self, seed):
        """Lemma 17 / Figure 1 on random level-3 runs."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level3Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        check_possibilities_lockstep(
            algebra, Level2Algebra(scenario.universe), mapping_3_to_2(), events
        )
