"""Unit tests for objects, accesses, and result() (paper Section 3.1/3.4)."""

from __future__ import annotations

import pytest

from repro.core import U, Universe, add, apply_fn, read, write


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    universe.define_object("y", init=5, values=range(100))
    return universe


class TestObjects:
    def test_define_and_query(self, uni):
        assert uni.has_object("x")
        assert uni.init("x") == 0
        assert uni.init("y") == 5
        assert set(uni.objects) == {"x", "y"}

    def test_initial_assignment(self, uni):
        assert uni.initial_assignment() == {"x": 0, "y": 5}

    def test_redefinition_must_match(self, uni):
        uni.define_object("x", init=0)  # idempotent
        with pytest.raises(ValueError):
            uni.define_object("x", init=1)

    def test_value_domain_enforced(self, uni):
        spec = uni.object_spec("y")
        spec.check_value(99)
        with pytest.raises(ValueError):
            spec.check_value(100)

    def test_unconstrained_domain(self, uni):
        uni.object_spec("x").check_value("anything")


class TestAccesses:
    def test_declare_and_query(self, uni):
        a = U.child(0).child("r")
        uni.declare_access(a, "x", read())
        assert uni.is_access(a)
        assert uni.object_of(a) == "x"
        assert uni.update_of(a).is_read
        assert not uni.is_access(U.child(0))

    def test_same_object(self, uni):
        a = U.child(0).child(0)
        b = U.child(1).child(0)
        c = U.child(2)
        uni.declare_access(a, "x", read())
        uni.declare_access(b, "x", write(3))
        uni.declare_access(c, "y", read())
        assert uni.same_object(a, b)
        assert not uni.same_object(a, c)

    def test_root_cannot_be_access(self, uni):
        with pytest.raises(ValueError):
            uni.declare_access(U, "x", read())

    def test_unknown_object_rejected(self, uni):
        with pytest.raises(KeyError):
            uni.declare_access(U.child(0), "zzz", read())

    def test_accesses_stay_leaves(self, uni):
        parent = U.child(0)
        uni.declare_access(parent, "x", read())
        with pytest.raises(ValueError):
            uni.declare_access(parent.child(0), "x", read())

    def test_redeclaration_must_match(self, uni):
        a = U.child(0)
        uni.declare_access(a, "x", write(1))
        uni.declare_access(a, "x", write(1))  # idempotent
        with pytest.raises(ValueError):
            uni.declare_access(a, "x", write(2))
        with pytest.raises(ValueError):
            uni.declare_access(a, "y", write(1))

    def test_accesses_to(self, uni):
        a = U.child(0)
        b = U.child(1)
        uni.declare_access(a, "x", read())
        uni.declare_access(b, "y", read())
        assert list(uni.accesses_to("x")) == [a]

    def test_check_label(self, uni):
        a = U.child(0)
        uni.declare_access(a, "y", read())
        uni.check_label(a, 10)
        with pytest.raises(ValueError):
            uni.check_label(a, 1000)


class TestUpdateFunctions:
    def test_read_is_identity(self):
        assert read()(42) == 42
        assert read().is_read

    def test_write_is_constant(self):
        w = write(7)
        assert w(0) == 7
        assert w(100) == 7
        assert not w.is_read
        assert "write" in repr(w)

    def test_add(self):
        assert add(3)(4) == 7

    def test_apply_fn(self):
        double = apply_fn("double", lambda v: v * 2)
        assert double(21) == 42
        assert repr(double) == "update:double"


class TestResult:
    def test_empty_sequence_gives_init(self, uni):
        assert uni.result("x", []) == 0
        assert uni.result("y", []) == 5

    def test_sequential_application(self, uni):
        a = U.child(0)
        b = U.child(1)
        c = U.child(2)
        uni.declare_access(a, "x", write(10))
        uni.declare_access(b, "x", add(5))
        uni.declare_access(c, "y", add(1))
        # c involves y, so it is skipped when evaluating x.
        assert uni.result("x", [a, c, b]) == 15
        assert uni.result("y", [a, c, b]) == 6

    def test_order_matters(self, uni):
        w = U.child(0)
        p = U.child(1)
        uni.declare_access(w, "x", write(10))
        uni.declare_access(p, "x", add(5))
        assert uni.result("x", [w, p]) == 15
        assert uni.result("x", [p, w]) == 10

    def test_non_access_rejected(self, uni):
        with pytest.raises(KeyError):
            uni.result("x", [U.child(99)])
