"""Scenario generation and the random-walk run generator."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Level2Algebra,
    Level3Algebra,
    Level4Algebra,
    RunConfig,
    random_run,
    random_scenario,
)
from repro.core.explorer import final_state


class TestScenario:
    def test_structure(self):
        rng = random.Random(0)
        scenario = random_scenario(rng, objects=3, toplevel=2, max_depth=3)
        assert len(scenario.universe.objects) == 3
        assert len(scenario.internal_actions) >= 2
        assert len(scenario.universe.accesses) >= 1
        assert "Scenario" in repr(scenario)

    def test_accesses_are_leaves_of_internal_tree(self):
        rng = random.Random(1)
        scenario = random_scenario(rng)
        internal = set(scenario.internal_actions)
        for access in scenario.universe.accesses:
            assert access not in internal
            assert access.parent() in internal

    def test_internal_actions_parent_closed(self):
        rng = random.Random(2)
        scenario = random_scenario(rng)
        internal = set(scenario.internal_actions)
        for action in internal:
            parent = action.parent()
            assert parent.is_root or parent in internal

    def test_deterministic(self):
        a = random_scenario(random.Random(3))
        b = random_scenario(random.Random(3))
        assert a.all_actions == b.all_actions

    def test_depth_bounded(self):
        rng = random.Random(4)
        scenario = random_scenario(rng, max_depth=2)
        for action in scenario.all_actions:
            assert action.depth <= 3  # internal depth 2 + access leaves


class TestRandomRun:
    @pytest.mark.parametrize("level_cls", [Level2Algebra, Level3Algebra, Level4Algebra])
    def test_runs_are_valid(self, level_cls):
        rng = random.Random(5)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = level_cls(scenario.universe)
        events = random_run(algebra, scenario, rng)
        assert algebra.is_valid(events)
        assert len(events) > 0

    def test_run_activates_most_of_the_scenario(self):
        rng = random.Random(6)
        scenario = random_scenario(rng, objects=3, toplevel=3)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng, RunConfig(max_steps=500))
        final = final_state(algebra, events)
        activated = len(final.tree.vertices) - 1  # minus U
        assert activated >= len(scenario.all_actions) * 0.5

    def test_abort_probability_zero_means_no_aborts(self):
        rng = random.Random(7)
        scenario = random_scenario(rng, objects=2, toplevel=2)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(
            algebra, scenario, rng, RunConfig(max_steps=300, abort_prob=0.0)
        )
        final = final_state(algebra, events)
        assert not final.tree.aborted

    def test_high_abort_probability_aborts_something(self):
        rng = random.Random(8)
        scenario = random_scenario(rng, objects=2, toplevel=3)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(
            algebra, scenario, rng, RunConfig(max_steps=300, abort_prob=0.9)
        )
        final = final_state(algebra, events)
        assert final.tree.aborted

    def test_unsupported_level_rejected(self):
        from repro.core import Level1Algebra

        rng = random.Random(9)
        scenario = random_scenario(rng)
        with pytest.raises(ValueError):
            random_run(Level1Algebra(scenario.universe), scenario, rng)

    def test_runs_reproducible(self):
        scenario = random_scenario(random.Random(10))
        algebra = Level2Algebra(scenario.universe)
        a = random_run(algebra, scenario, random.Random(99))
        b = random_run(algebra, scenario, random.Random(99))
        assert a == b
