"""Workload shapes, generation determinism, Zipf skew, and the executor."""

from __future__ import annotations

import random

import pytest

from repro.baselines import FlatLockingDB
from repro.engine import NestedTransactionDB
from repro.workload import (
    Block,
    Op,
    WorkloadConfig,
    WorkloadGenerator,
    ZipfSampler,
    all_failure_points,
    bushy,
    chain,
    execute,
    flat,
    initial_values,
    nested_uniform,
    object_names,
)


class TestShapes:
    def test_flat(self):
        p = flat([Op("read", "a"), Op("write", "b", 1)])
        assert p.op_count == 2
        assert p.root.depth() == 1
        assert p.root.count_blocks() == 1

    def test_chain_depth(self):
        p = chain([[Op("read", "a")], [Op("read", "b")], [Op("read", "c")]])
        assert p.root.depth() == 3
        assert p.op_count == 3
        assert len(all_failure_points(p)) == 2  # every descent is a point

    def test_bushy(self):
        p = bushy([[Op("read", "a")], [Op("read", "b")]], parallel=True)
        assert p.root.parallel
        assert p.root.count_blocks() == 3
        assert len(all_failure_points(p)) == 2

    def test_nested_uniform(self):
        p = nested_uniform(2, 2, [Op("rmw", "a", 1)])
        # depth 2 fanout 2: root + 2 mid + 4 leaves
        assert p.root.count_blocks() == 7
        assert p.op_count == 4
        assert p.root.depth() == 3

    def test_ops_collection(self):
        inner = Block([Op("read", "x")])
        outer = Block([Op("write", "y", 1), inner])
        assert [op.obj for op in outer.ops()] == ["y", "x"]


class TestGenerator:
    def test_deterministic(self):
        cfg = WorkloadConfig(seed=5, programs=10)
        a = WorkloadGenerator(cfg).programs()
        b = WorkloadGenerator(cfg).programs()
        assert [p.root.ops() for p in a] == [q.root.ops() for q in b]

    def test_object_names(self):
        assert object_names(3) == ["obj0000", "obj0001", "obj0002"]
        assert initial_values(2, 9) == {"obj0000": 9, "obj0001": 9}

    def test_all_shapes_generate(self):
        for shape in ["flat", "chain", "bushy", "uniform"]:
            cfg = WorkloadConfig(shape=shape, programs=3, seed=1)
            programs = WorkloadGenerator(cfg).programs()
            assert len(programs) == 3
            assert all(p.op_count > 0 for p in programs)

    def test_unknown_shape(self):
        cfg = WorkloadConfig(shape="pyramid")
        with pytest.raises(ValueError):
            WorkloadGenerator(cfg).programs()

    def test_read_ratio_respected(self):
        cfg = WorkloadConfig(read_ratio=1.0, programs=20, seed=2)
        programs = WorkloadGenerator(cfg).programs()
        kinds = {op.kind for p in programs for op in p.root.ops()}
        assert kinds == {"read"}


class TestZipf:
    def test_uniform_when_theta_zero(self):
        rng = random.Random(1)
        sampler = ZipfSampler(10, 0.0, rng)
        counts = [0] * 10
        for _ in range(5000):
            counts[sampler.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_skew_concentrates(self):
        rng = random.Random(1)
        sampler = ZipfSampler(100, 1.2, rng)
        counts = [0] * 100
        for _ in range(5000):
            counts[sampler.sample()] += 1
        # rank 0 should dominate the tail decisively
        assert counts[0] > 10 * max(counts[50:])

    def test_single_item(self):
        sampler = ZipfSampler(1, 0.9, random.Random(0))
        assert sampler.sample() == 0

    def test_requires_items(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.5, random.Random(0))


class TestExecutor:
    def test_all_programs_commit_without_failures(self):
        db = NestedTransactionDB(initial_values(16))
        cfg = WorkloadConfig(objects=16, programs=20, seed=3)
        programs = WorkloadGenerator(cfg).programs()
        report = execute(db, programs, threads=3, seed=3)
        assert report.committed_programs == 20
        assert report.failed_programs == 0
        # Every planned op eventually commits (deadlock-victim blocks are
        # retried, so attempted may exceed committed, never the reverse).
        assert report.ops_committed == sum(p.op_count for p in programs)
        assert report.ops_attempted >= report.ops_committed
        assert report.throughput > 0
        assert report.goodput > 0

    def test_report_row_shape(self):
        db = NestedTransactionDB(initial_values(4))
        cfg = WorkloadConfig(objects=4, programs=2, seed=0)
        report = execute(db, WorkloadGenerator(cfg).programs(), threads=1)
        row = report.as_row()
        assert "throughput" in row and "db_stats" not in row
        assert report.wasted_ops == 0

    def test_nested_contains_failures_flat_retries(self):
        cfg = WorkloadConfig(objects=16, shape="bushy", groups=4, programs=30, seed=4)
        programs = WorkloadGenerator(cfg).programs()

        nested = NestedTransactionDB(initial_values(16))
        nested_report = execute(nested, programs, threads=2, failure_prob=0.4, seed=4)
        flat_db = FlatLockingDB(initial_values(16))
        flat_report = execute(flat_db, programs, threads=2, failure_prob=0.4, seed=4)

        # Both complete everything (injection fires once per point)...
        assert nested_report.committed_programs == 30
        assert flat_report.committed_programs == 30
        # ...but the nested system contains failures in child aborts while
        # the flat system pays a whole-transaction retry per failure.
        assert nested_report.child_aborts >= nested_report.injected > 0
        assert flat_report.child_aborts == 0
        assert flat_report.retries >= flat_report.injected > 0

    def test_injection_counts_match(self):
        db = NestedTransactionDB(initial_values(8))
        cfg = WorkloadConfig(objects=8, shape="bushy", groups=2, programs=20, seed=5)
        programs = WorkloadGenerator(cfg).programs()
        report = execute(db, programs, threads=2, failure_prob=1.0, seed=5)
        # Every failure point fires exactly once.
        expected = sum(len(all_failure_points(p)) for p in programs)
        assert report.injected == expected

    def test_single_thread_execution(self):
        db = NestedTransactionDB(initial_values(4))
        cfg = WorkloadConfig(objects=4, programs=5, seed=6)
        report = execute(db, WorkloadGenerator(cfg).programs(), threads=1)
        assert report.committed_programs == 5
