"""Scenario fleet: compilation, chaos schedules, certified runs, crashes.

The fleet's promise is that *modeled applications at user scale* run on
the nested engine streaming-certified while chaos fires — and that every
run is self-judging via a conservation invariant.  These tests pin the
pieces: the O(1) Zipf sampler, sparse materialization, the declarative
chaos schedules (including determinism, which the seeded retry-jitter
bugfix in this PR makes meaningful end to end), the runner's verdicts,
fsync poisoning, and the SIGKILL crash stage.
"""

from __future__ import annotations

import collections
import random

import pytest

from repro.scenarios import (
    SCENARIOS,
    ApproxZipf,
    ChaosSchedule,
    build_scenario,
    run_fsync_poison_scenario,
    run_scenario,
    run_scenario_crash,
)
from repro.scenarios.chaos import ChaosPhase, with_hot_keys
from repro.workload.executor import all_failure_points
from repro.workload.shapes import Block, Op


class TestApproxZipf:
    def test_deterministic_for_seed(self):
        a = ApproxZipf(1_000_000, 0.9, random.Random(7))
        b = ApproxZipf(1_000_000, 0.9, random.Random(7))
        assert [a.sample() for _ in range(200)] == [b.sample() for _ in range(200)]

    @pytest.mark.parametrize("theta", [0.0, 0.5, 1.0, 1.2])
    def test_samples_in_range(self, theta):
        zipf = ApproxZipf(5_000_000, theta, random.Random(0))
        for _ in range(500):
            assert 0 <= zipf.sample() < 5_000_000

    def test_skew_concentrates_on_head(self):
        """At theta=1.1 the hottest rank dominates; at theta=0 it doesn't."""
        hot = ApproxZipf(100_000, 1.1, random.Random(1))
        counts = collections.Counter(hot.sample() for _ in range(5_000))
        assert counts[0] > 500  # rank 0 takes a large share
        uniform = ApproxZipf(100_000, 0.0, random.Random(1))
        flat_counts = collections.Counter(uniform.sample() for _ in range(5_000))
        assert flat_counts[0] < 50

    def test_constant_time_at_any_population(self):
        # The point of the approximation: no per-rank table, so a
        # 50-million-user population constructs instantly.
        zipf = ApproxZipf(50_000_000, 0.99, random.Random(2))
        assert 0 <= zipf.sample() < 50_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxZipf(0, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            ApproxZipf(10, -0.1, random.Random(0))


class TestScenarioCompilation:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_compiles_and_materializes_sparsely(self, name):
        scenario = build_scenario(name, programs=50, users=1_000_000, seed=3)
        assert len(scenario.programs) == 50
        assert scenario.users == 1_000_000
        touched = {
            op.obj for p in scenario.programs for op in p.root.ops()
        }
        # Sparse: initial covers what the programs touch (plus ledgers),
        # and is nowhere near the logical population.
        assert touched <= set(scenario.initial)
        assert len(scenario.initial) < 5_000
        assert scenario.hot_keys
        assert set(scenario.hot_keys) <= set(scenario.initial)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_invariant_holds_on_initial_state(self, name):
        scenario = build_scenario(name, programs=30, users=100_000, seed=0)
        assert scenario.invariant(dict(scenario.initial)) is None

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_compilation_is_deterministic(self, name):
        a = build_scenario(name, programs=40, users=200_000, seed=9)
        b = build_scenario(name, programs=40, users=200_000, seed=9)
        assert [p.label for p in a.programs] == [p.label for p in b.programs]
        assert a.initial == b.initial

    def test_bank_invariant_catches_lost_money(self):
        scenario = build_scenario("bank", programs=20, users=10_000, seed=0)
        broken = dict(scenario.initial)
        first_account = next(k for k in broken if k.startswith("acct:"))
        broken[first_account] -= 1  # money vanished
        assert scenario.invariant(broken) is not None

    def test_social_invariant_catches_torn_fanout(self):
        scenario = build_scenario("social", programs=20, users=10_000, seed=0)
        broken = dict(scenario.initial)
        broken["social:deliveries"] += 3  # ledger without feed writes
        assert scenario.invariant(broken) is not None

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nosuch")


class TestChaosSchedule:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ChaosPhase(0.5, 0.5)
        with pytest.raises(ValueError):
            ChaosPhase(0.0, 1.0, failure_prob=1.5)
        with pytest.raises(ValueError):
            ChaosPhase(-0.1, 0.5)

    def test_burst_shape(self):
        schedule = ChaosSchedule.burst(0.05, window=(0.4, 0.6), prob=0.8)
        block = Block([Op("rmw", "x", 1)], failure_point=True)
        assert schedule.prob_for(0.1, block) == 0.05
        assert schedule.prob_for(0.5, block) == 0.8
        assert schedule.prob_for(0.9, block) == 0.05

    def test_ramp_monotone(self):
        schedule = ChaosSchedule.ramp(0.0, 1.0, steps=5)
        block = Block([Op("rmw", "x", 1)], failure_point=True)
        probs = [schedule.prob_for(p / 10, block) for p in range(10)]
        assert probs == sorted(probs)
        assert probs[0] < probs[-1]

    def test_storm_targets_hot_keys_only(self):
        schedule = ChaosSchedule.storm(hot_prob=0.9, hot_keys=frozenset({"hot"}))
        hot_block = Block([Op("increment", "hot", 1)], failure_point=True)
        cold_block = Block([Op("increment", "cold", 1)], failure_point=True)
        assert schedule.prob_for(0.5, hot_block) == pytest.approx(0.9)
        assert schedule.prob_for(0.5, cold_block) == 0.0

    def test_with_hot_keys_fills_targets(self):
        schedule = ChaosSchedule.storm(hot_prob=0.5)
        filled = with_hot_keys(schedule, ["a", "b"])
        assert filled.hot_keys == frozenset({"a", "b"})
        assert filled.phases == schedule.phases

    def test_firing_is_deterministic(self):
        """Same (schedule, seed, programs) → bit-identical injections."""
        scenario = build_scenario("bank", programs=30, users=10_000, seed=5)
        schedule = ChaosSchedule.steady(0.5, seed=5)

        def fired_sets():
            factory = schedule.firing_factory(len(scenario.programs))
            out = []
            for index, program in enumerate(scenario.programs):
                firing = factory(program, index)
                out.append(
                    sorted(
                        i
                        for i, b in enumerate(all_failure_points(program))
                        if firing.fires(b)
                    )
                )
            return out

        assert fired_sets() == fired_sets()

    def test_describe_is_json_ready(self):
        import json

        schedule = ChaosSchedule.burst(0.1, seed=2, fsync_fail_at=7)
        summary = json.loads(json.dumps(schedule.describe()))
        assert summary["seed"] == 2
        assert summary["fsync_fail_at"] == 7
        assert len(summary["phases"]) == 3


class TestRunScenario:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_certified_run_with_chaos(self, name):
        result = run_scenario(
            name,
            programs=25,
            users=20_000,
            threads=4,
            seed=1,
            chaos=ChaosSchedule.steady(0.4, seed=1),
        )
        assert result.ok, result.as_dict()
        assert result.certified is True
        assert result.invariant_ok
        assert result.quiescent
        assert result.committed + result.failed == result.programs
        assert result.injected > 0
        # Containment: every injected failure died as a child abort.
        assert result.containment == 1.0

    def test_clean_run(self):
        result = run_scenario("bank", programs=20, users=10_000, threads=2)
        assert result.ok
        assert result.injected == 0
        assert result.containment == 1.0
        assert result.failed == 0

    def test_hot_key_storm_fills_targets_from_scenario(self):
        result = run_scenario(
            "social",
            programs=25,
            users=20_000,
            threads=2,
            seed=2,
            chaos=ChaosSchedule.storm(hot_prob=0.9, seed=2),
        )
        assert result.ok, result.as_dict()
        assert result.chaos["hot_keys"]  # filled from scenario.hot_keys

    def test_certification_can_be_disabled(self):
        result = run_scenario(
            "marketplace", programs=10, users=5_000, threads=2, certify=None
        )
        assert result.certified is None
        assert result.ok  # invariant + quiescence still judged


class TestFsyncPoisonScenario:
    def test_poison_surfaces_and_recovery_is_consistent(self, tmp_path):
        outcome = run_fsync_poison_scenario(
            "bank",
            str(tmp_path),
            fsync_fail_at=4,
            programs=25,
            users=10_000,
            threads=2,
            seed=3,
        )
        # Pre-bugfix the WalSyncError killed a worker thread silently;
        # now it surfaces out of execute() and the run reports poisoned.
        assert outcome["poisoned"] is True
        assert outcome["invariant_ok"], outcome
        # The durable prefix is a real prefix: at least one commit can
        # exist, but the horizon never advanced past the failed fsync.
        assert outcome["committed_before_poison"] < 25


@pytest.mark.crash
class TestScenarioCrash:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_kill_recover_judge(self, name, tmp_path):
        report = run_scenario_crash(
            str(tmp_path),
            name,
            programs=30,
            users=20_000,
            seed=6,
            threads=2,
            min_acks=8,
            post_slice=4,
        )
        assert report.ok, report.failures
        assert report.deterministic
        assert report.invariant_ok
        assert report.acked_programs >= 8
        assert report.post_certified is True
