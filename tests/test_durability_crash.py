"""Crash-restart tests: SIGKILL a durable worker process, recover, verify.

Each test runs the full harness from ``repro.durability.crashtest``:
spawn a worker process hammering a durable engine from multiple threads,
SIGKILL it mid-workload, recover over the same directory, and check the
durability contract — every acknowledged (fsync'd) commit survives, no
uncommitted write survives, recovery is deterministic and quiescent, and
a post-recovery workload passes the serializability oracle.
"""

import pytest

from repro.durability.crashtest import POISON, run_crash_recovery_scenario

pytestmark = pytest.mark.crash


def _check(report):
    assert report.ok, "durability contract violated: %s" % report.failures
    assert report.acked_commits > 0
    assert report.recovered_total >= report.acked_commits
    assert report.recovered_total < POISON
    assert report.oracle_ok


@pytest.mark.parametrize("latch", ["global", "striped"])
def test_crash_recovery_per_commit_sync(tmp_path, latch):
    report = run_crash_recovery_scenario(
        str(tmp_path), latch=latch, sync="commit", seed=1, min_acks=30
    )
    _check(report)
    assert report.sync == "commit" and report.latch == latch


def test_crash_recovery_group_commit(tmp_path):
    report = run_crash_recovery_scenario(
        str(tmp_path), latch="striped", sync="group", seed=2, min_acks=30
    )
    _check(report)


def test_crash_recovery_across_checkpoint(tmp_path):
    """Kill after at least one fuzzy checkpoint: recovery must overlay the
    snapshot and replay only the log suffix, losing nothing."""
    report = run_crash_recovery_scenario(
        str(tmp_path),
        latch="global",
        sync="commit",
        seed=3,
        min_acks=60,
        checkpoint_interval=20,
    )
    _check(report)
    assert report.checkpoint_seq >= 1
    # The suffix replayed over the checkpoint is shorter than the run.
    assert report.commits_replayed < report.recovered_total
