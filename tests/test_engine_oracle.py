"""Oracle-checked executions: every concurrent engine run must produce a
trace whose permanent subtree is serializable, and single-mode traces must
be valid level-2 computations (conformance to the paper's algorithm)."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import (
    OracleViolation,
    check_engine,
    check_trace_level2,
    check_trace_serializable,
    trace_to_aat,
)
from repro.core import U, is_data_serializable
from repro.engine import EngineConfig, NestedTransactionDB
from repro.engine.trace import TraceRecord, TraceRecorder
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values


def run_concurrent_workload(db, seed, threads=4, programs=40):
    cfg = WorkloadConfig(
        objects=12,
        theta=0.8,
        shape="bushy",
        groups=3,
        ops_per_transaction=6,
        programs=programs,
        seed=seed,
    )
    generated = WorkloadGenerator(cfg).programs()
    return execute(db, generated, threads=threads, seed=seed)


class TestOracleOnRealRuns:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rw_mode_serializable(self, seed):
        db = NestedTransactionDB(initial_values(12))
        run_concurrent_workload(db, seed)
        report = check_engine(db)
        assert report.ok
        assert report.permanent_datasteps > 0

    @pytest.mark.parametrize("seed", [4, 5])
    def test_single_mode_conforms_to_level2(self, seed):
        db = NestedTransactionDB(initial_values(12), config=EngineConfig(single_mode=True))
        run_concurrent_workload(db, seed)
        report = check_engine(db)  # includes the level-2 replay
        assert report.ok

    def test_failure_injection_still_serializable(self):
        db = NestedTransactionDB(initial_values(12))
        cfg = WorkloadConfig(
            objects=12, shape="bushy", groups=4, programs=40, seed=9
        )
        programs = WorkloadGenerator(cfg).programs()
        execute(db, programs, threads=4, failure_prob=0.3, seed=9)
        assert check_engine(db).ok

    def test_parallel_blocks_still_serializable(self):
        db = NestedTransactionDB(initial_values(8))
        cfg = WorkloadConfig(
            objects=8,
            shape="uniform",
            depth=2,
            fanout=2,
            parallel_blocks=True,
            programs=20,
            seed=10,
        )
        programs = WorkloadGenerator(cfg).programs()
        execute(db, programs, threads=3, seed=10)
        assert check_engine(db).ok

    def test_lazy_cleanup_still_serializable(self):
        db = NestedTransactionDB(initial_values(12), config=EngineConfig(lazy_lock_cleanup=True))
        run_concurrent_workload(db, 11)
        assert check_engine(db).ok

    def test_counter_increments_never_lost(self):
        """The classic lost-update check as a semantic end-to-end test."""
        db = NestedTransactionDB({"c": 0})

        def worker():
            for _ in range(30):
                db.run_transaction(lambda t: t.write("c", t.read("c") + 1))

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert db.snapshot()["c"] == 180
        assert check_engine(db).ok


class TestOracleDetectsCorruption:
    """The oracle is not vacuous: corrupted traces are rejected."""

    def _trace_with_bad_label(self):
        db = NestedTransactionDB({"x": 0})
        with db.transaction() as t:
            t.write("x", 5)
        with db.transaction() as t:
            t.read("x")
        records = list(db.trace.records)
        # Corrupt the read's seen value to something impossible.
        for i, record in enumerate(records):
            if record.op == "perform" and record.kind == "read":
                records[i] = TraceRecord(
                    record.op,
                    record.txn,
                    record.access,
                    record.obj,
                    record.kind,
                    seen=999,
                )
        return records, db.initial_values

    def test_bad_label_caught(self):
        records, initial = self._trace_with_bad_label()
        with pytest.raises(OracleViolation):
            check_trace_serializable(records, initial)
        report = check_trace_serializable(records, initial, strict=False)
        assert not report.ok
        assert "saw" in report.failure

    def test_bad_label_caught_by_level2_replay(self):
        records, initial = self._trace_with_bad_label()
        with pytest.raises(OracleViolation):
            check_trace_level2(records, initial)

    def test_conflict_cycle_caught(self):
        """Hand-build a trace where two transactions each read the other's
        pre-state and write: classic non-serializable interleave."""
        recorder = TraceRecorder()
        t1, t2 = U.child(0), U.child(1)
        recorder.record_create(t1)
        recorder.record_create(t2)
        recorder.record_perform(t1, t1.child("r0"), "x", "read", 0)
        recorder.record_perform(t2, t2.child("r0"), "y", "read", 0)
        recorder.record_perform(t1, t1.child("w1"), "y", "write", 0, 1)
        recorder.record_perform(t2, t2.child("w1"), "x", "write", 0, 1)
        recorder.record_commit(t1)
        recorder.record_commit(t2)
        report = check_trace_serializable(
            recorder.records, {"x": 0, "y": 0}, strict=False
        )
        assert not report.ok
        assert "cycle" in report.failure

    def test_aat_reconstruction(self):
        db = NestedTransactionDB({"x": 0})
        with db.transaction() as t:
            t.write("x", 1)
        aat = trace_to_aat(db.trace.records, db.initial_values)
        assert is_data_serializable(aat.perm())
        assert len(aat.data_sequence("x")) == 1

    def test_trace_required(self):
        db = NestedTransactionDB({"x": 0}, config=EngineConfig(record_trace=False))
        with pytest.raises(ValueError):
            check_engine(db)


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_oracle_property_over_random_workloads(seed):
    """Property: any seeded concurrent workload leaves a serializable
    permanent trace, in either lock mode."""
    single = seed % 2 == 0
    db = NestedTransactionDB(initial_values(10), config=EngineConfig(single_mode=single))
    cfg = WorkloadConfig(
        objects=10,
        theta=0.9,
        shape="bushy" if seed % 3 else "chain",
        programs=25,
        seed=seed,
    )
    programs = WorkloadGenerator(cfg).programs()
    execute(db, programs, threads=3, failure_prob=0.15, seed=seed)
    assert check_engine(db).ok
