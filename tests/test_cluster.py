"""The sharded multi-process cluster: wire protocol, routing, trace
merging/synthesis, end-to-end certification, site kill/revive, and the
CLI's exit-code contract."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, EXIT_VERDICT_FAIL
from repro.cluster import (
    ClusterMap,
    ProtocolLog,
    TraceMerger,
    WireClosed,
    recv_frame,
    run_cluster_scenario,
    send_frame,
)
from repro.cluster.wire import summary_for
from repro.core.naming import U
from repro.scenarios.chaos import SiteEvent, SiteSchedule


class TestWire:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "hello", "values": [1, 2, 3]})
            assert recv_frame(b) == {"op": "hello", "values": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(WireClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(WireClosed):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_protocol_log_counts(self):
        log = ProtocolLog(coordinator_node=4, keep=4)
        for _ in range(5):
            log.log_exchange(0, summary_for(U.child(1), "active"))
        counts = log.counts()
        assert counts["messages_sent"] == 5
        assert counts["messages_received"] == 5
        assert counts["summary_entries"] == 10
        # The event list is capped; the counters are not.
        assert len(log.events) == 4
        assert summary_for(None, "active").contained_in(
            summary_for(U.child(1), "active")
        )


class TestRouting:
    def test_home_is_deterministic_and_in_range(self):
        cmap = ClusterMap(4)
        for obj in ("bank:acct:17", "market:stock:3", "x"):
            assert cmap.home(obj) == cmap.home(obj)
            assert 0 <= cmap.home(obj) < 4

    def test_replicated_objects_live_everywhere(self):
        cmap = ClusterMap(3, replicated=("bank:",))
        assert cmap.sites_of("bank:fees") == (0, 1, 2)
        assert len(cmap.sites_of("acct:1")) == 1
        parts = cmap.partition({"bank:fees": 0, "acct:1": 5})
        assert all("bank:fees" in parts[s] for s in range(3))
        assert sum("acct:1" in parts[s] for s in range(3)) == 1

    def test_merged_initial_uses_copy_names(self):
        cmap = ClusterMap(2, replicated=("ledger",))
        merged = cmap.merged_initial({"ledger": 7, "a": 1})
        assert merged["ledger@0"] == 7 and merged["ledger@1"] == 7
        assert sum(1 for k in merged if k.startswith("a@")) == 1
        assert ClusterMap.copy_name("a", 1) == "a@1"


def _rec(op, txn, seq, access=None, obj=None, kind=None, seen=None, arg=None):
    return {"op": op, "txn": txn, "access": access, "obj": obj,
            "kind": kind, "seen": seen, "arg": arg, "seq": seq}


class TestTraceMerger:
    def test_out_of_order_stream_is_reordered(self):
        merger = TraceMerger({"x@0": 0})
        merger.register_site(0)
        g = U.child(0)
        merger.begin_global(g)
        merger.register_branch(0, [1], g)
        # Publication order inverted vs local seq order.
        merger.push(0, _rec("perform", [1], 1, access=[1, "w0"], obj="x",
                            kind="write", seen=0, arg=5))
        merger.push(0, _rec("create", [1], 0))
        merger.push(0, _rec("commit", [1], 2))
        merger.decide(g, "commit", waits=[(0, [1], 2)])
        report = merger.finish()
        assert report.ok and report.unresolved == 0
        assert [r.op for r in merger.records] == [
            "create", "create", "perform", "commit", "commit",
        ]

    def test_dead_site_commit_synthesized_from_performs(self):
        """Site killed after acking the commit but before streaming its
        records: the branch's suffix is synthesized from the op log."""
        merger = TraceMerger({"x@0": 0})
        merger.register_site(0)
        g = U.child(0)
        merger.begin_global(g)
        merger.register_branch(0, [1], g)
        merger.push(0, _rec("create", [1], 0))
        performs = [{"label": "w0", "obj": "x", "kind": "write",
                     "seen": 0, "arg": 9}]
        merger.decide(g, "commit", waits=[(0, [1], 2, performs)])
        assert merger.pending_decisions() == 1  # barrier holds while alive
        merger.site_dead(0)
        report = merger.finish()
        assert report.ok
        assert report.synthesized == 2  # the perform and the commit
        assert [r.op for r in merger.records] == [
            "create", "create", "perform", "commit", "commit",
        ]
        perform = merger.records[2]
        assert perform.obj == "x@0" and perform.arg == 9

    def test_in_doubt_resolves_on_revival(self):
        merger = TraceMerger({"x@0": 0})
        merger.register_site(0)
        g = U.child(0)
        merger.begin_global(g)
        merger.register_branch(0, [1], g)
        merger.push(0, _rec("create", [1], 0))
        performs = [{"label": "w0", "obj": "x", "kind": "write",
                     "seen": 0, "arg": 3}]
        merger.site_dead(0)
        merger.decide(g, None, in_doubt=[(0, [1], performs)])
        assert merger.pending_decisions() == 1
        merger.register_site(0)  # revival: new incarnation
        merger.resolve_branch(g, 0, [1], committed=True)
        report = merger.finish()
        assert report.ok and report.unresolved == 0
        assert merger.records[-1].op == "commit"
        assert merger.records[-1].txn == g

    def test_unresolved_decision_fails_the_merge(self):
        merger = TraceMerger({"x@0": 0})
        merger.register_site(0)
        g = U.child(0)
        merger.begin_global(g)
        merger.register_branch(0, [1], g)
        merger.site_dead(0)
        merger.decide(g, None, in_doubt=[(0, [1], [])])
        report = merger.finish()
        assert not report.ok and report.unresolved == 1


class TestSiteSchedule:
    def test_kill_revive_shape(self):
        schedule = SiteSchedule.kill_revive(site=1, kill_at=0.2,
                                            revive_at=0.7)
        actions = [(e.action, e.site, e.at) for e in schedule.events]
        assert actions == [("kill", 1, 0.2), ("revive", 1, 0.7)]

    def test_rolling_covers_each_site(self):
        schedule = SiteSchedule.rolling(3, width=0.1)
        kills = [e.site for e in schedule.events if e.action == "kill"]
        revives = [e.site for e in schedule.events if e.action == "revive"]
        assert kills == [0, 1, 2] and revives == [0, 1, 2]
        assert all(0 <= e.at <= 1 for e in schedule.events)

    def test_bad_events_rejected(self):
        with pytest.raises(ValueError):
            SiteEvent(at=1.5, action="kill", site=0)
        with pytest.raises(ValueError):
            SiteEvent(at=0.5, action="explode", site=0)


@pytest.mark.crash
class TestClusterEndToEnd:
    def test_two_shard_run_certifies(self):
        result = run_cluster_scenario(
            "bank", shards=2, programs=12, users=10, threads=4, seed=3,
            durability=False, certified=True,
        )
        assert result.committed == 12
        assert result.certified_streaming is True
        assert result.certified_oracle is True
        assert result.invariant_ok and result.ledger_ok
        assert result.replicas_coherent
        assert result.messages > 0
        assert result.ok

    def test_kill_and_revive_recovers(self):
        result = run_cluster_scenario(
            "bank", shards=2, programs=20, users=14, threads=4, seed=5,
            sites=SiteSchedule.kill_revive(site=1, kill_at=0.25,
                                           revive_at=0.55),
            durability=True, certified=True,
        )
        assert result.sites_killed == 1
        assert result.sites_revived >= 1
        assert result.certified_streaming is True
        assert result.certified_oracle is True
        assert result.merge.get("unresolved", 0) == 0
        assert result.invariant_ok and result.ledger_ok
        assert result.replicas_coherent
        assert result.committed > 0
        assert result.ok


class TestExitCodes:
    def test_convention_constants(self):
        assert (EXIT_OK, EXIT_VERDICT_FAIL, EXIT_USAGE) == (0, 1, 2)

    def test_usage_errors_exit_2(self, tmp_path):
        import importlib.util
        import os

        spec = importlib.util.spec_from_file_location(
            "run_cluster_cli",
            os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "scripts", "run_cluster.py"),
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--shards", "0"])
        assert excinfo.value.code == EXIT_USAGE
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--shards", "2", "--kill-site", "7"])
        assert excinfo.value.code == EXIT_USAGE
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--shards", "2", "--kill-site", "1",
                         "--no-durability"])
        assert excinfo.value.code == EXIT_USAGE
