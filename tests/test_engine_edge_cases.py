"""Engine edge cases: retry exhaustion, timeouts, representation, and
API surface not covered by the main behavioural tests."""

from __future__ import annotations

import threading

import pytest

from repro.engine import (
    EngineConfig,
    LockTimeout,
    NestedTransactionDB,
    RetryPolicy,
    TransactionAborted,
)


class TestRunTransactionRetries:
    def test_retry_exhaustion_raises(self):
        db = NestedTransactionDB({"a": 0})

        def always_doomed(txn):
            raise TransactionAborted(txn.name, "synthetic")

        with pytest.raises(TransactionAborted):
            db.run_transaction(
                always_doomed, policy=RetryPolicy(max_retries=3, backoff=0)
            )
        # 1 initial + 3 retries
        assert db.stats.begun == 4
        assert db.stats.aborted == 4
        db.assert_quiescent()

    def test_retry_succeeds_after_transient_aborts(self):
        db = NestedTransactionDB({"a": 0})
        attempts = []

        def flaky(txn):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransactionAborted(txn.name, "transient")
            txn.write("a", len(attempts))
            return "done"

        assert db.run_transaction(flaky, policy=RetryPolicy(backoff=0)) == "done"
        assert db.snapshot()["a"] == 3

    def test_loose_retry_kwargs_removed(self):
        """The deprecated ``max_retries=``/``backoff=`` kwargs finished
        their cycle: ``policy=RetryPolicy(...)`` is the only spelling."""
        db = NestedTransactionDB({"a": 0})

        def always_doomed(txn):
            raise TransactionAborted(txn.name, "synthetic")

        with pytest.raises(TypeError):
            db.run_transaction(always_doomed, max_retries=2, backoff=0)
        with pytest.raises(TypeError):
            db.run_transaction(always_doomed, max_retries=1, policy=RetryPolicy())

    def test_policy_retryable_filter(self):
        db = NestedTransactionDB({"a": 0})
        count = []

        def raises_key_error(txn):
            count.append(1)
            raise KeyError("retry me")

        policy = RetryPolicy(max_retries=2, backoff=0, retryable=(KeyError,))
        with pytest.raises(KeyError):
            db.run_transaction(raises_key_error, policy=policy)
        assert len(count) == 3  # KeyError was retryable under this policy
        db.assert_quiescent()

    def test_non_abort_exceptions_propagate_immediately(self):
        db = NestedTransactionDB({"a": 0})
        count = []

        def broken(txn):
            count.append(1)
            raise KeyError("application bug")

        with pytest.raises(KeyError):
            db.run_transaction(broken)
        assert len(count) == 1  # no retries for application bugs
        # The transaction is aborted, not leaked.
        db.assert_quiescent()


class TestLockTimeouts:
    def test_timeout_leaves_transaction_usable(self):
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(detect_deadlocks=False, lock_timeout=0.15))
        holder = db.begin_transaction()
        holder.write("x", 1)
        waiter = db.begin_transaction()
        with pytest.raises(LockTimeout):
            waiter.write("x", 2)
        # The waiter is still active and can work elsewhere, or abort.
        waiter.write("y", 5)
        waiter.commit()
        holder.commit()
        assert db.snapshot() == {"x": 1, "y": 5}
        db.assert_quiescent()

    def test_timeout_while_holding_then_abort(self):
        db = NestedTransactionDB({"x": 0, "y": 0}, config=EngineConfig(detect_deadlocks=False, lock_timeout=0.15))
        holder = db.begin_transaction()
        holder.write("x", 1)
        waiter = db.begin_transaction()
        waiter.write("y", 9)
        with pytest.raises(LockTimeout):
            waiter.read_for_update("x")
        waiter.abort()
        assert db.read_committed("y") == 0
        holder.abort()
        db.assert_quiescent()


class TestMiscSurface:
    def test_repr(self):
        db = NestedTransactionDB({"a": 0})
        assert "read/write" in repr(db)
        single = NestedTransactionDB({"a": 0}, config=EngineConfig(single_mode=True))
        assert "single-mode" in repr(single)
        txn = db.begin_transaction()
        assert "active" in repr(txn)
        txn.abort()

    def test_transaction_identity_helpers(self):
        db = NestedTransactionDB({"a": 0})
        parent = db.begin_transaction()
        child = parent.begin_subtransaction()
        assert parent.is_ancestor_of(child)
        assert not child.is_ancestor_of(parent)
        assert child.depth == parent.depth + 1
        assert child.name.parent() == parent.name
        parent.abort()

    def test_unique_names_across_toplevels(self):
        db = NestedTransactionDB({"a": 0})
        names = set()
        for _ in range(5):
            txn = db.begin_transaction()
            names.add(txn.name)
            txn.abort()
        assert len(names) == 5

    def test_read_for_update_returns_current_value(self):
        db = NestedTransactionDB({"a": 41})
        with db.transaction() as t:
            value = t.read_for_update("a")
            t.write("a", value + 1)
        assert db.snapshot()["a"] == 42

    def test_read_for_update_blocks_other_readers(self):
        db = NestedTransactionDB({"a": 0}, config=EngineConfig(lock_timeout=5.0))
        t1 = db.begin_transaction()
        t1.read_for_update("a")  # write lock, no actual write
        progressed = threading.Event()

        def second():
            db.run_transaction(lambda t: t.read("a"))
            progressed.set()

        thread = threading.Thread(target=second, daemon=True)
        thread.start()
        assert not progressed.wait(0.15)
        t1.commit()
        assert progressed.wait(5)
        thread.join(5)

    def test_parallel_with_no_functions(self):
        db = NestedTransactionDB({"a": 0})
        with db.transaction() as t:
            assert t.parallel([]) == []

    def test_subtransaction_exception_reraised(self):
        db = NestedTransactionDB({"a": 0})
        with db.transaction() as t:
            with pytest.raises(ZeroDivisionError):
                with t.subtransaction() as s:
                    s.write("a", 1)
                    _ = 1 / 0
            assert t.read("a") == 0
