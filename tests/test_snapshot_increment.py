"""Snapshot reads, the commutative INCREMENT lock mode, and the
redesigned ``EngineConfig`` engine surface.

The property suites pin the two tentpole guarantees:

* snapshot visibility — a read-only transaction observes exactly the
  committed state at its begin horizon, no matter what commits after;
* increment exactness — N threads of blind increments always sum
  exactly, with zero lock waits (full commutativity), in both latch
  modes.

The differential suite streams mixed snapshot/increment traces through
the online certifier and the offline Theorem-9 oracle and requires them
to agree — including on deliberately corrupted traces, which both must
reject.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from dataclasses import replace as dc_replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import (
    OracleViolation,
    VERSION,
    certify_records,
    check_engine,
    check_snapshot_reads,
)
from repro.engine import (
    EngineConfig,
    INCREMENT,
    LockMode,
    NestedTransactionDB,
    ReadOnlyViolation,
)
from repro.engine.errors import LockTimeout, TransactionAborted

LATCH_MODES = ("global", "striped")


def make_db(initial, **overrides):
    return NestedTransactionDB(initial, config=EngineConfig(**overrides))


# ---------------------------------------------------------------------------
# INCREMENT lock mode


class TestIncrementMode:
    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    def test_increment_folds_into_own_reads(self, latch_mode):
        db = make_db({"c": 10}, latch_mode=latch_mode)

        def body(t):
            t.increment("c", 5)
            t.increment("c", -2)
            assert t.read("c") == 13

        db.run_transaction(body)
        assert db.snapshot()["c"] == 13
        db.assert_quiescent()
        assert check_engine(db).ok

    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    def test_nthread_increment_exactness(self, latch_mode):
        """8 threads x 25 blind increments sum exactly — and commute:
        no increment ever waits for another increment's lock."""
        db = make_db({"c": 0}, latch_mode=latch_mode, record_trace=False)
        threads, per_thread, delta = 8, 25, 3

        def worker():
            for _ in range(per_thread):
                db.run_transaction(lambda t: t.increment("c", delta))

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert db.snapshot()["c"] == threads * per_thread * delta
        assert db.stats.lock_waits == 0
        assert db.stats.increments == threads * per_thread
        db.assert_quiescent()

    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    def test_subtransaction_delta_inheritance_and_abort(self, latch_mode):
        db = make_db({"c": 100}, latch_mode=latch_mode)

        def body(t):
            with t.subtransaction() as sub:
                sub.increment("c", 7)
            # Moss inheritance: the child's delta is now the parent's.
            assert t.read("c") == 107
            try:
                with t.subtransaction() as sub2:
                    sub2.increment("c", 1000)
                    raise RuntimeError("force child abort")
            except RuntimeError:
                pass
            # The aborted child's delta is discarded, the inherited one
            # survives.
            assert t.read("c") == 107

        db.run_transaction(body)
        assert db.snapshot()["c"] == 107
        db.assert_quiescent()
        assert check_engine(db).ok

    def test_increment_conflicts_with_readers(self):
        """INCREMENT commutes only with itself: a reader in another
        family must wait for (here: time out on) the increment lock."""
        db = make_db({"c": 0}, lock_timeout=0.05, detect_deadlocks=False)
        holder = db.begin_transaction()
        holder.increment("c", 1)
        reader = db.begin_transaction()
        with pytest.raises(LockTimeout):
            reader.read("c")
        reader.abort()
        holder.commit()
        assert db.snapshot()["c"] == 1

    def test_increment_conflicts_with_writers(self):
        db = make_db({"c": 0}, lock_timeout=0.05, detect_deadlocks=False)
        holder = db.begin_transaction()
        holder.write("c", 42)
        other = db.begin_transaction()
        with pytest.raises(LockTimeout):
            other.increment("c", 1)
        other.abort()
        holder.commit()
        assert db.snapshot()["c"] == 42

    def test_write_after_increment_materializes(self):
        """A write grant folds pending ancestor deltas into real versions
        before the writer's version is pushed."""
        db = make_db({"c": 100})

        def body(t):
            t.increment("c", 5)
            t.write("c", t.read("c") * 2)

        db.run_transaction(body)
        assert db.snapshot()["c"] == 210
        db.assert_quiescent()
        assert check_engine(db).ok

    def test_single_mode_increment_degrades_to_rmw(self):
        """Single-mode engines express increment as read_for_update +
        write, keeping their level-2 conformance intact."""
        db = make_db({"c": 10}, single_mode=True)
        db.run_transaction(lambda t: t.increment("c", 5))
        assert db.snapshot()["c"] == 15
        assert db.stats.increments == 0  # degraded, not a blind add
        assert check_engine(db).ok


# ---------------------------------------------------------------------------
# Snapshot reads


class TestSnapshotReads:
    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    def test_snapshot_pinned_at_begin(self, latch_mode):
        db = make_db({"x": 1}, latch_mode=latch_mode)
        snap = db.begin_transaction(read_only=True)
        db.run_transaction(lambda t: t.write("x", 2))
        assert snap.read("x") == 1  # horizon predates the write
        snap.commit()
        late = db.begin_transaction(read_only=True)
        assert late.read("x") == 2
        late.commit()
        db.assert_quiescent()
        assert check_engine(db).ok

    def test_snapshot_rejects_mutation(self):
        db = make_db({"x": 0})
        snap = db.begin_transaction(read_only=True)
        with pytest.raises(ReadOnlyViolation):
            snap.write("x", 1)
        with pytest.raises(ReadOnlyViolation):
            snap.increment("x", 1)
        with pytest.raises(ReadOnlyViolation):
            snap.read_for_update("x")
        snap.commit()

    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    def test_snapshot_never_blocks_on_writer_locks(self, latch_mode):
        """A snapshot read proceeds while a writer holds the object's
        write lock mid-transaction — and sees the pre-write value."""
        db = make_db({"x": 1}, latch_mode=latch_mode)
        writer = db.begin_transaction()
        writer.write("x", 99)  # write lock held, uncommitted
        snap = db.begin_transaction(read_only=True)
        assert snap.read("x") == 1
        snap.commit()
        writer.commit()
        assert db.snapshot()["x"] == 99
        db.assert_quiescent()
        assert check_engine(db).ok

    @given(
        script=st.lists(
            st.tuples(st.booleans(), st.integers(-5, 5)),
            min_size=1,
            max_size=20,
        ),
        snap_points=st.sets(st.integers(0, 20), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_visibility_property(self, script, snap_points):
        """Snapshots begun between arbitrary committed writes/increments
        always read the model value at their begin point — even when the
        read happens after many later commits."""
        db = make_db({"c": 0})
        model = 0
        open_snaps = []  # (txn, expected value at its horizon)
        for step, (is_write, value) in enumerate(script):
            if step in snap_points:
                open_snaps.append((db.begin_transaction(read_only=True), model))
            if is_write:
                db.run_transaction(lambda t, v=value: t.write("c", v))
                model = value
            else:
                db.run_transaction(lambda t, v=value: t.increment("c", v))
                model = model + value
        for snap, expected in open_snaps:
            assert snap.read("c") == expected
            assert snap.read("c") == expected  # repeatable
            snap.commit()
        assert db.snapshot()["c"] == model
        db.assert_quiescent()
        assert check_engine(db).ok
        report = certify_records(list(db.trace.records), db.initial_values)
        assert report.ok, report.violations


# ---------------------------------------------------------------------------
# Differential certification: streaming vs offline oracle


def _mixed_run(latch_mode, seed):
    """A concurrent mixed workload: writers, incrementers, snapshot
    readers.  Returns the finished (certifying) engine."""
    import random

    db = make_db(
        {"a": 0, "b": 10, "c": 100},
        latch_mode=latch_mode,
        certify="streaming",
    )

    def worker(wid):
        rng = random.Random(seed * 31 + wid)
        for _ in range(12):
            roll = rng.random()
            if roll < 0.3:
                snap = db.begin_transaction(read_only=True)
                snap.read(rng.choice("abc"))
                snap.read(rng.choice("abc"))
                snap.commit()
            elif roll < 0.65:
                obj, delta = rng.choice("abc"), rng.randint(1, 9)
                db.run_transaction(lambda t: t.increment(obj, delta))
            else:
                obj, value = rng.choice("abc"), rng.randint(0, 99)

                def body(t):
                    with t.subtransaction() as sub:
                        sub.write(obj, value + sub.read(obj) % 7)

                db.run_transaction(body)

    pool = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    db.assert_quiescent()
    return db


class TestDifferentialCertification:
    @pytest.mark.parametrize("latch_mode", LATCH_MODES)
    @pytest.mark.parametrize("seed", (1, 2))
    def test_streaming_agrees_with_offline_oracle(self, latch_mode, seed):
        db = _mixed_run(latch_mode, seed)
        # Online: the engine's own streaming certifier saw every record.
        db.assert_certified()
        records = list(db.trace.records)
        initial = db.initial_values
        # Offline oracle: level-2rw conformance + Theorem-9 + snapshots.
        assert check_engine(db).ok
        assert check_snapshot_reads(records, initial) == []
        # Replayed streaming pass agrees.
        report = certify_records(records, initial)
        assert report.ok, report.violations

    def test_corrupted_snapshot_read_rejected_by_both(self):
        """Negative differential: falsify one snapshot read's observed
        value — the streaming certifier and the offline oracle must both
        flag it."""
        db = make_db({"x": 5})
        db.run_transaction(lambda t: t.write("x", 6))
        snap = db.begin_transaction(read_only=True)
        assert snap.read("x") == 6
        snap.commit()
        records = list(db.trace.records)
        corrupted = [
            dc_replace(rec, seen=999)
            if rec.op == "perform" and rec.seen == 6
            else rec
            for rec in records
        ]
        assert corrupted != records
        report = certify_records(corrupted, db.initial_values)
        assert not report.ok
        assert any(v.kind == VERSION for v in report.violations)
        failures = check_snapshot_reads(
            corrupted, db.initial_values, strict=False
        )
        assert failures
        with pytest.raises(OracleViolation):
            check_snapshot_reads(corrupted, db.initial_values)

    def test_corrupted_increment_total_rejected(self):
        """Falsify a later read's seen value so the replayed increment
        arithmetic no longer matches — the certifier catches it."""
        db = make_db({"c": 0})
        db.run_transaction(lambda t: t.increment("c", 5))

        def body(t):
            assert t.read("c") == 5

        db.run_transaction(body)
        records = list(db.trace.records)
        corrupted = [
            dc_replace(rec, seen=4)
            if rec.op == "perform" and rec.kind == "read" and rec.seen == 5
            else rec
            for rec in records
        ]
        assert corrupted != records
        report = certify_records(corrupted, db.initial_values)
        assert not report.ok


# ---------------------------------------------------------------------------
# WAL / recovery


class TestDurableIncrements:
    def test_increment_recovery(self, tmp_path):
        directory = str(tmp_path / "wal")
        cfg = EngineConfig(durability=directory)
        db = NestedTransactionDB({"c": 100, "x": 1}, config=cfg)

        def body(t):
            t.increment("c", 5)
            t.write("x", 42)

        db.run_transaction(body)
        db.run_transaction(lambda t: t.increment("c", 7))
        # Crash: reopen the directory without closing.
        recovered = NestedTransactionDB({"c": 100, "x": 1}, config=cfg)
        assert recovered.snapshot() == {"c": 112, "x": 42}
        recovered.close()
        db.close()

    def test_increment_recovery_across_checkpoint(self, tmp_path):
        directory = str(tmp_path / "wal")
        cfg = EngineConfig(latch_mode="striped", durability=directory)
        db = NestedTransactionDB({"c": 0}, config=cfg)
        for _ in range(10):
            db.run_transaction(lambda t: t.increment("c", 2))
        assert db.checkpoint() is not None
        db.run_transaction(lambda t: t.increment("c", 3))
        recovered = NestedTransactionDB({"c": 0}, config=cfg)
        assert recovered.snapshot()["c"] == 23
        recovered.close()
        db.close()


# ---------------------------------------------------------------------------
# EngineConfig surface


class TestEngineConfigSurface:
    def test_canonical_config_constructor(self):
        cfg = EngineConfig(latch_mode="striped", stripes=4, record_trace=False)
        db = NestedTransactionDB({"x": 0}, config=cfg)
        assert db.config is cfg
        db.run_transaction(lambda t: t.write("x", 1))
        assert db.snapshot()["x"] == 1

    def test_loose_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            db = NestedTransactionDB({"x": 0}, **{"single_mode": True})
        assert db.config.single_mode is True

    def test_unknown_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="max_retries"):
            NestedTransactionDB({"x": 0}, max_retries=3)

    def test_config_plus_loose_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            NestedTransactionDB(
                {"x": 0}, config=EngineConfig(), **{"single_mode": True}
            )

    def test_removed_run_transaction_retry_kwargs(self):
        db = NestedTransactionDB({"x": 0})
        with pytest.raises(TypeError):
            db.run_transaction(lambda t: t.read("x"), max_retries=3)
        with pytest.raises(TypeError):
            db.run_transaction(lambda t: t.read("x"), backoff=0.1)

    def test_lock_mode_exports(self):
        assert LockMode.INCREMENT == INCREMENT == "increment"
        assert LockMode.INCREMENT.self_commutes
        assert LockMode.READ.self_commutes
        assert not LockMode.WRITE.self_commutes

    def test_invalid_latch_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(latch_mode="sharded")


# ---------------------------------------------------------------------------
# Abort-path exception masking


class TestAbortMasking:
    def test_abort_failure_does_not_mask_body_error(self, monkeypatch):
        from repro.engine.transaction import Transaction

        db = NestedTransactionDB({"x": 0})
        original_abort = Transaction.abort

        def broken_abort(self):
            original_abort(self)
            raise RuntimeError("abort bookkeeping failed")

        monkeypatch.setattr(Transaction, "broken", broken_abort, raising=False)
        monkeypatch.setattr(Transaction, "abort", broken_abort)

        def body(t):
            raise ValueError("body failure")

        with pytest.raises(ValueError, match="body failure") as excinfo:
            db.run_transaction(body)
        # The abort-time error rides along as context, never replaces it.
        assert isinstance(excinfo.value.__context__, RuntimeError)

    def test_retryable_abort_still_retries(self):
        db = NestedTransactionDB({"x": 0})
        attempts = []

        def body(t):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransactionAborted(t.name, "synthetic victim")
            t.write("x", len(attempts))

        db.run_transaction(body, sleep_fn=lambda _s: None)
        assert db.snapshot()["x"] == 3
