"""The distributed driver in rw mode, mixed workloads, and engine
contention diagnostics."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import (
    Level2RWAlgebra,
    Level4RWAlgebra,
    check_local_mapping_lockstep,
    is_rw_serializable,
    local_mapping_5rw_to_4rw,
    project_run,
)
from repro.distributed import DistributedMossSystem, random_distributed_scenario
from repro.engine import EngineConfig, NestedTransactionDB
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values


class TestDistributedRWMode:
    def test_rw_run_completes_and_validates(self):
        rng = random.Random(31)
        scenario, homes = random_distributed_scenario(rng, node_count=3, toplevel=4)
        system = DistributedMossSystem(scenario, homes, seed=31, mode="rw")
        report, events = system.run()
        assert report.completed
        check_local_mapping_lockstep(
            system.algebra,
            Level4RWAlgebra(scenario.universe),
            local_mapping_5rw_to_4rw(scenario.universe, homes),
            events,
        )
        final = Level2RWAlgebra(scenario.universe).run(project_run(events, 2))
        assert is_rw_serializable(final.perm())

    def test_rw_mode_completes_same_scenarios_as_single(self):
        """Both modes drive the same scenario to completion (stall counts
        differ run-to-run because event order differs between modes)."""
        rng = random.Random(33)
        scenario, homes = random_distributed_scenario(
            rng, node_count=3, toplevel=4, locality=0.3
        )
        single_report, _ = DistributedMossSystem(
            scenario, homes, seed=33, mode="single"
        ).run()
        rw_report, _ = DistributedMossSystem(
            scenario, homes, seed=33, mode="rw"
        ).run()
        assert rw_report.completed and single_report.completed
        assert rw_report.performed >= 1

    def test_unknown_mode_rejected(self):
        rng = random.Random(34)
        scenario, homes = random_distributed_scenario(rng, node_count=2)
        with pytest.raises(ValueError):
            DistributedMossSystem(scenario, homes, mode="quantum")


class TestMixedWorkload:
    def test_mixed_generates_varied_shapes(self):
        cfg = WorkloadConfig(shape="mixed", programs=30, seed=5)
        programs = WorkloadGenerator(cfg).programs()
        block_counts = {p.root.count_blocks() for p in programs}
        assert len(block_counts) >= 2  # genuinely mixed structures

    def test_mixed_executes_and_certifies(self):
        from repro.checker import check_engine

        db = NestedTransactionDB(initial_values(16))
        cfg = WorkloadConfig(objects=16, shape="mixed", programs=25, seed=6)
        report = execute(db, WorkloadGenerator(cfg).programs(), threads=3, seed=6)
        assert report.committed_programs == 25
        assert check_engine(db).ok

    def test_mixed_deterministic(self):
        cfg = WorkloadConfig(shape="mixed", programs=10, seed=7)
        a = WorkloadGenerator(cfg).programs()
        b = WorkloadGenerator(cfg).programs()
        assert [p.root.ops() for p in a] == [q.root.ops() for q in b]


class TestContentionProfile:
    def test_hot_object_shows_up(self):
        db = NestedTransactionDB({"hot": 0, "cold": 0}, config=EngineConfig(lock_timeout=5.0))
        t1 = db.begin_transaction()
        t1.write("hot", 1)
        waited = threading.Event()

        def second():
            db.run_transaction(lambda t: t.write("hot", 2))
            waited.set()

        thread = threading.Thread(target=second, daemon=True)
        thread.start()
        time.sleep(0.1)
        t1.commit()
        assert waited.wait(5)
        thread.join(5)
        profile = db.contention_profile()
        assert profile and profile[0][0] == "hot"
        assert all(obj != "cold" for obj, _waits in profile)

    def test_empty_profile_when_uncontended(self):
        db = NestedTransactionDB({"a": 0})
        with db.transaction() as t:
            t.write("a", 1)
        assert db.contention_profile() == []

    def test_top_limits_results(self):
        db = NestedTransactionDB({"a": 0})
        db._object_waits["a"] = 3  # simulate recorded waits
        assert db.contention_profile(top=0) == []
        assert db.contention_profile(top=1) == [("a", 3)]
