"""Policy robustness under lost deliveries.

The paper's buffer is durable (M_j accumulates everything ever sent), so
"loss" models dropped delivery attempts.  Gossip re-sends full summaries
every round and recovers; one-shot targeted pushes cannot, and runs stall
into preemption or abandonment.  Either way, lost messages never threaten
*safety*: every run remains a valid ℬ computation with a serializable
permanent subtree.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Level2Algebra, is_data_serializable, project_run
from repro.distributed import (
    GOSSIP,
    TARGETED,
    DistributedMossSystem,
    PolicyConfig,
    random_distributed_scenario,
)


def run_with_loss(policy: str, loss: float, seed: int = 51):
    rng = random.Random(seed)
    scenario, homes = random_distributed_scenario(
        rng, node_count=3, toplevel=4, locality=0.3
    )
    system = DistributedMossSystem(
        scenario,
        homes,
        PolicyConfig(kind=policy),
        seed=seed,
        loss_prob=loss,
        max_steps=30_000,
    )
    report, events = system.run()
    return scenario, report, events


class TestGossipRecovers:
    @pytest.mark.parametrize("loss", [0.2, 0.5])
    def test_gossip_completes_despite_loss(self, loss):
        scenario, report, _events = run_with_loss(GOSSIP, loss)
        assert report.completed
        assert report.lost > 0  # losses actually happened

    def test_zero_loss_drops_nothing(self):
        _scenario, report, _events = run_with_loss(GOSSIP, 0.0)
        assert report.lost == 0
        assert report.completed


class TestSafetyUnderLoss:
    @pytest.mark.parametrize("policy", [GOSSIP, TARGETED])
    def test_lossy_runs_stay_valid_and_serializable(self, policy):
        """Liveness may suffer (targeted can stall); safety never does."""
        scenario, report, events = run_with_loss(policy, 0.4)
        level2 = Level2Algebra(scenario.universe)
        final = level2.run(project_run(events, 2))
        assert is_data_serializable(final.perm())

    def test_targeted_loss_costs_progress_or_preemption(self):
        """With heavy loss, the one-shot targeted policy either abandons
        work, preempts, or completes less than gossip does on the same
        scenario — quantify rather than assume."""
        _s1, gossip_report, _e1 = run_with_loss(GOSSIP, 0.5, seed=53)
        _s2, targeted_report, _e2 = run_with_loss(TARGETED, 0.5, seed=53)
        assert gossip_report.completed
        degraded = (
            not targeted_report.completed
            or targeted_report.abandoned > 0
            or targeted_report.stalls_broken > 0
            or targeted_report.performed <= gossip_report.performed
        )
        assert degraded
