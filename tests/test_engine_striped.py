"""Striped lock manager: A/B parity with the global-latch engine.

Every workload the stress suite throws at the global latch runs here in
both latch modes; the two engines must agree on the verdicts that matter
— every program commits, the serializability oracle (and, in single
mode, the level-2 trace-conformance replay) certifies the history, the
store quiesces — and their ``stats.snapshot()`` dicts must carry the
same keys with the same accounting invariants.  Deterministic
single-threaded scripts must produce *identical* snapshots in both
modes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.checker import check_engine
from repro.engine import (
    EngineConfig,
    DEFAULT_STRIPES,
    DeadlockAbort,
    LockTimeout,
    NestedTransactionDB,
    StripedLockTable,
    TransactionAborted,
    UnknownObject,
    stripe_index,
)
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values

# The same engine configurations the global-latch stress suite runs,
# plus striped-only stripe-count extremes (1 stripe = maximal stripe
# sharing, 64 stripes on 16 objects = every object alone on a stripe).
CONFIGS = [
    pytest.param(dict(), id="rw-default"),
    pytest.param(dict(single_mode=True), id="single-mode"),
    pytest.param(dict(lazy_lock_cleanup=True), id="lazy-cleanup"),
    pytest.param(dict(deadlock_policy="requester"), id="requester-victim"),
    pytest.param(dict(deadlock_policy="youngest"), id="youngest-victim"),
    pytest.param(dict(stripes=1), id="one-stripe"),
    pytest.param(dict(stripes=64), id="more-stripes-than-objects"),
]

SNAPSHOT_KEYS = {
    "begun",
    "committed",
    "aborted",
    "reads",
    "writes",
    "lock_waits",
    "deadlocks",
    "lazy_lock_reaps",
    "increments",
    "snapshot_reads",
}


def _run_workload(db, programs=60, threads=6):
    cfg = WorkloadConfig(
        objects=16,
        theta=0.9,
        shape="mixed",
        ops_per_transaction=10,
        programs=programs,
        seed=99,
    )
    return execute(
        db,
        WorkloadGenerator(cfg).programs(),
        threads=threads,
        failure_prob=0.2,
        seed=99,
    )


@pytest.mark.parametrize("db_kwargs", CONFIGS)
def test_striped_stress_matches_global_verdicts(db_kwargs):
    """Both latch modes must certify the same stress workload: all
    programs commit, the oracle passes, the store quiesces, and the
    stats snapshots share keys and accounting invariants."""
    striped_kwargs = dict(db_kwargs)
    global_kwargs = dict(db_kwargs)
    global_kwargs.pop("stripes", None)

    snapshots = {}
    for mode, kwargs in (("global", global_kwargs), ("striped", striped_kwargs)):
        db = NestedTransactionDB(
            initial_values(16), config=EngineConfig(latch_mode=mode, **kwargs)
        )
        report = _run_workload(db)
        assert report.committed_programs == 60, mode
        assert check_engine(db).ok, mode
        db.assert_quiescent()
        snapshots[mode] = db.stats.snapshot()

    for mode, snap in snapshots.items():
        assert set(snap) == SNAPSHOT_KEYS, mode
        # Conservation: every transaction begun either committed or aborted.
        assert snap["begun"] == snap["committed"] + snap["aborted"], mode
        assert snap["begun"] >= 60, mode
        assert snap["reads"] > 0 and snap["writes"] > 0, mode
        if "lazy_lock_cleanup" not in striped_kwargs:
            assert snap["lazy_lock_reaps"] == 0, mode


def test_deterministic_script_snapshots_identical():
    """With one thread there is no scheduling nondeterminism: the two
    latch modes must produce byte-identical stats and final state."""

    def script(db):
        outer = db.begin_transaction()
        outer.write("a", 1)
        child = outer.begin_subtransaction()
        child.write("b", child.read("a") + 1)
        child.commit()
        doomed = outer.begin_subtransaction()
        doomed.write("c", 99)
        doomed.abort()
        outer.commit()
        solo = db.begin_transaction()
        solo.read("b")
        solo.commit()
        return db.snapshot(), db.stats.snapshot()

    initial = {"a": 0, "b": 0, "c": 0}
    state_global, stats_global = script(NestedTransactionDB(dict(initial)))
    state_striped, stats_striped = script(
        NestedTransactionDB(dict(initial), config=EngineConfig(latch_mode="striped"))
    )
    assert state_global == state_striped == {"a": 1, "b": 2, "c": 0}
    assert stats_global == stats_striped


def test_latch_mode_validation():
    with pytest.raises(ValueError, match="latch_mode"):
        NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="sharded"))
    with pytest.raises(ValueError, match="n_stripes"):
        NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped", stripes=0))


def test_stripe_count_property():
    assert NestedTransactionDB({"a": 0}).stripe_count == 1
    assert (
        NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped")).stripe_count
        == DEFAULT_STRIPES
    )
    assert (
        NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped", stripes=4)).stripe_count
        == 4
    )


def test_stripe_index_deterministic_and_in_range():
    objects = ["obj%d" % i for i in range(100)]
    for n in (1, 2, 16, 64):
        for obj in objects:
            index = stripe_index(obj, n)
            assert 0 <= index < n
            assert index == stripe_index(obj, n)


def test_striped_table_covers_every_object():
    objects = {"o%d" % i: 0 for i in range(40)}
    table = StripedLockTable(objects, 8)
    for obj in objects:
        assert obj in table
        assert table.stripe_of(obj).index == stripe_index(obj, 8)
    assert sorted(s.index for s in table.stripes_for(objects)) == list(range(8))


def test_striped_unknown_object():
    db = NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped"))
    txn = db.begin_transaction()
    with pytest.raises(UnknownObject):
        txn.read("nope")
    with pytest.raises(UnknownObject):
        db.read_committed("nope")
    txn.abort()


def test_striped_read_committed_ignores_uncommitted_writes():
    db = NestedTransactionDB({"a": 10}, config=EngineConfig(latch_mode="striped"))
    txn = db.begin_transaction()
    txn.write("a", 77)
    assert db.read_committed("a") == 10
    txn.commit()
    assert db.read_committed("a") == 77


def test_striped_hot_objects_alias():
    db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode="striped"))
    holder = db.begin_transaction()
    holder.write("a", 1)

    def contender():
        other = db.begin_transaction()
        try:
            other.write("a", 2)
            other.commit()
        except TransactionAborted:
            other.abort()

    thread = threading.Thread(target=contender, daemon=True)
    thread.start()
    time.sleep(0.1)
    holder.commit()
    thread.join(5)
    assert not thread.is_alive()
    assert db.hot_objects() == db.contention_profile()
    assert dict(db.hot_objects()).get("a", 0) >= 1


def test_striped_targeted_wakeup_is_prompt():
    """A commit must wake the waiter parked on the released object well
    before the lock timeout — the targeted-wakeup path, not a timeout."""
    db = NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped", lock_timeout=30.0))
    holder = db.begin_transaction()
    holder.write("a", 1)
    elapsed = {}

    def waiter():
        txn = db.begin_transaction()
        start = time.monotonic()
        value = txn.read("a")
        elapsed["wait"] = time.monotonic() - start
        elapsed["value"] = value
        txn.commit()

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.2)  # let the waiter park on "a"
    holder.commit()
    thread.join(5)
    assert not thread.is_alive()
    assert elapsed["value"] == 1
    assert elapsed["wait"] < 5.0  # woken by notify, not the 30 s timeout


def test_striped_abort_wakes_doomed_waiter():
    """Aborting a subtree must wake its own parked descendants promptly
    (the case notify_all handled for free under the global latch)."""
    db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode="striped", lock_timeout=30.0))
    blocker = db.begin_transaction()
    blocker.write("a", 5)
    parent = db.begin_transaction()
    outcome = {}

    def child_worker():
        child = parent.begin_subtransaction()
        start = time.monotonic()
        try:
            child.read("a")  # parks behind blocker's write lock
            outcome["error"] = None
        except TransactionAborted:
            outcome["error"] = "aborted"
        outcome["wait"] = time.monotonic() - start

    thread = threading.Thread(target=child_worker, daemon=True)
    thread.start()
    time.sleep(0.2)  # let the child park on "a"
    parent.abort()  # kills the parked child's subtree
    thread.join(5)
    assert not thread.is_alive()
    assert outcome["error"] == "aborted"
    assert outcome["wait"] < 5.0
    blocker.commit()
    check_engine(db)
    db.assert_quiescent()


def test_striped_deadlock_detection_across_stripes():
    """Classic two-object deadlock with the objects (almost surely) on
    different stripes: the cross-stripe waits-for graph must catch it."""
    db = NestedTransactionDB({"a": 0, "b": 0}, config=EngineConfig(latch_mode="striped", deadlock_policy="requester"))
    t1 = db.begin_transaction()
    t2 = db.begin_transaction()
    t1.write("a", 1)
    t2.write("b", 2)
    ready = threading.Barrier(2)
    aborted = []

    def cross(txn, obj):
        ready.wait()
        try:
            txn.write(obj, 9)
            txn.commit()
        except DeadlockAbort:
            aborted.append(txn.name)
            txn.abort()
        except TransactionAborted:
            aborted.append(txn.name)

    threads = [
        threading.Thread(target=cross, args=(t1, "b"), daemon=True),
        threading.Thread(target=cross, args=(t2, "a"), daemon=True),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
        assert not thread.is_alive()
    assert len(aborted) >= 1
    assert db.stats.deadlocks >= 1
    db.assert_quiescent()


def test_striped_lock_timeout_without_detection():
    db = NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped", detect_deadlocks=False, lock_timeout=0.2))
    holder = db.begin_transaction()
    holder.write("a", 1)
    other = db.begin_transaction()
    with pytest.raises(LockTimeout):
        other.write("a", 2)
    other.abort()
    holder.commit()
    db.assert_quiescent()


def test_striped_lazy_cleanup_reaps_dead_locks():
    """With lazy cleanup, an aborted holder's locks stay in the table
    until a conflicting requester reaps them."""
    db = NestedTransactionDB({"a": 0}, config=EngineConfig(latch_mode="striped", lazy_lock_cleanup=True))
    holder = db.begin_transaction()
    holder.write("a", 1)
    holder.abort()
    other = db.begin_transaction()
    other.write("a", 2)  # must reap the dead lock, not block
    other.commit()
    assert db.snapshot()["a"] == 2
    assert db.stats.lazy_lock_reaps >= 1
    db.assert_quiescent()
