"""Level-2 algebra 𝒜': the abstract effect of locking (paper Section 6),
plus Theorem 14 and Lemmas 10/11 as properties of random runs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_lemma10, check_lemma11, check_lemma12, check_lemma13
from repro.core import (
    Abort,
    Commit,
    Create,
    Level2Algebra,
    Perform,
    U,
    Universe,
    is_data_serializable,
    random_run,
    random_scenario,
    read,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1, t2 = U.child(1), U.child(2)
    universe.declare_access(t1.child("w"), "x", write(7))
    universe.declare_access(t2.child("r"), "x", read())
    return universe


@pytest.fixture
def algebra(uni):
    return Level2Algebra(uni)


class TestPerformPreconditions:
    def _ready(self, algebra):
        """t1's write performed; t1 still active; t2's read created."""
        t1, t2 = U.child(1), U.child(2)
        return algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Create(t2),
                Create(t2.child("r")),
            ]
        )

    def test_d12_blocks_invisible_live_step(self, algebra):
        """t1 is active, so its committed write is live but not visible to
        t2's read — the read must wait."""
        state = self._ready(algebra)
        failure = algebra.precondition_failure(
            state, Perform(U.child(2).child("r"), 0)
        )
        assert "(d12)" in failure

    def test_d12_satisfied_after_commit(self, algebra):
        state = algebra.apply(self._ready(algebra), Commit(U.child(1)))
        assert algebra.enabled(state, Perform(U.child(2).child("r"), 7))

    def test_d12_satisfied_after_abort(self, algebra):
        """A dead data step no longer blocks (it will never matter)."""
        state = algebra.apply(self._ready(algebra), Abort(U.child(1)))
        assert algebra.enabled(state, Perform(U.child(2).child("r"), 0))

    def test_d13_forces_the_replay_value(self, algebra):
        state = algebra.apply(self._ready(algebra), Commit(U.child(1)))
        failure = algebra.precondition_failure(
            state, Perform(U.child(2).child("r"), 0)
        )
        assert "(d13)" in failure

    def test_d13_unconstrained_for_dead_access(self, algebra):
        """If the access itself is already dead, any value is allowed."""
        t1, t2 = U.child(1), U.child(2)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                Commit(t1),
                Create(t2),
                Create(t2.child("r")),
                Abort(t2),
            ]
        )
        # t2 aborted, so the read (still active, now an orphan) may see
        # anything.
        assert algebra.enabled(state, Perform(t2.child("r"), 12345))

    def test_d23_appends_to_data_order(self, algebra):
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0)]
        )
        assert state.data_sequence("x") == (t1.child("w"),)

    def test_expected_value_helper(self, algebra):
        state = self._ready(algebra)
        state = algebra.apply(state, Commit(U.child(1)))
        assert algebra.expected_value(state, U.child(2).child("r")) == 7


class TestTheorem14:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_computable_implies_perm_data_serializable(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=3, max_depth=3)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        final = algebra.run(events)
        assert is_data_serializable(final.perm())

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_every_prefix_is_data_serializable(self, seed):
        """Theorem 14 holds at every point of the computation, not just the
        end — via its two halves, Lemma 12 and Lemma 13, separately."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=2, toplevel=2, max_depth=3)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng, None)
        state = algebra.initial_state
        for event in events:
            state = algebra.apply(state, event)
            check_lemma12(state)
            check_lemma13(state)
            assert is_data_serializable(state.perm())


class TestLemmas10And11:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_lemma10_along_runs(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        state = algebra.initial_state
        for event in events:
            state = algebra.apply(state, event)
            check_lemma10(state)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_lemma11_between_prefixes(self, seed):
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level2Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        states = [algebra.initial_state]
        for event in events:
            states.append(algebra.apply(states[-1], event))
        # compare a few prefix pairs
        rng2 = random.Random(seed + 1)
        for _ in range(min(10, len(states))):
            i = rng2.randrange(len(states))
            j = rng2.randrange(i, len(states))
            check_lemma11(states[i], states[j])
