"""Level-4 algebra 𝒜''' with value maps (paper Section 8), Lemma 19,
and the non-singleton possibilities mapping h'' (Lemma 20)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import check_lemma19
from repro.core import (
    Commit,
    Create,
    Level3Algebra,
    Level4Algebra,
    Perform,
    ReleaseLock,
    U,
    Universe,
    ValueMap,
    VersionMap,
    add,
    check_possibilities_lockstep,
    mapping_4_to_3,
    random_run,
    random_scenario,
    write,
)


@pytest.fixture
def uni():
    universe = Universe()
    universe.define_object("x", init=0)
    t1 = U.child(1)
    universe.declare_access(t1.child("w"), "x", add(5))
    return universe


class TestValueMap:
    def test_initial(self, uni):
        vm = ValueMap.initial(uni)
        assert vm.get("x", U) == 0
        assert vm.principal_value("x") == 0
        vm.validate(uni)

    def test_eval_of_version_map(self, uni):
        w = U.child(1).child("w")
        versions = VersionMap.initial(uni.objects).with_performed("x", w)
        values = ValueMap.eval_of(versions, uni)
        assert values.get("x", U) == 0
        assert values.get("x", w) == 5
        assert values.principal_value("x") == 5

    def test_lemma19_on_random_version_maps(self, uni):
        w = U.child(1).child("w")
        versions = VersionMap.initial(uni.objects).with_performed("x", w)
        check_lemma19(versions, uni)
        check_lemma19(versions.with_released("x", w), uni)

    def test_perform_applies_update(self, uni):
        w = U.child(1).child("w")
        vm = ValueMap.initial(uni).with_performed("x", w, 5)
        assert vm.get("x", w) == 5
        assert vm.principal_value("x") == 5

    def test_release_and_lose(self, uni):
        w = U.child(1).child("w")
        vm = ValueMap.initial(uni).with_performed("x", w, 5)
        released = vm.with_released("x", w)
        assert released.get("x", U.child(1)) == 5
        lost = vm.with_lost("x", w)
        assert lost.principal_value("x") == 0

    def test_restricted_to(self, uni):
        vm = ValueMap.initial(uni)
        assert vm.restricted_to([]).objects == ()
        assert vm.restricted_to(["x"]) == vm

    def test_validate_rejects_non_chain(self, uni):
        bad = ValueMap({"x": {U: 0, U.child(1): 0, U.child(2): 0}})
        with pytest.raises(ValueError):
            bad.validate(uni)


class TestLevel4Effects:
    def test_value_map_tracks_update(self, uni):
        algebra = Level4Algebra(uni)
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0)]
        )
        # update(A)(u) = 0 + 5
        assert state.values.get("x", t1.child("w")) == 5
        assert state.aat.tree.label(t1.child("w")) == 0

    def test_chain_of_commits_propagates_value(self, uni):
        algebra = Level4Algebra(uni)
        t1 = U.child(1)
        state = algebra.run(
            [
                Create(t1),
                Create(t1.child("w")),
                Perform(t1.child("w"), 0),
                ReleaseLock(t1.child("w"), "x"),
                Commit(t1),
                ReleaseLock(t1, "x"),
            ]
        )
        assert state.values.get("x", U) == 5
        assert state.values.holders("x") == (U,)


class TestHDoublePrime:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_h_double_prime_is_a_possibilities_mapping(self, seed):
        """Lemma 20 / Figure 1: the witness version map evolved through
        level 3 always evaluates to the level-4 value map."""
        rng = random.Random(seed)
        scenario = random_scenario(rng, objects=3, toplevel=2)
        algebra = Level4Algebra(scenario.universe)
        events = random_run(algebra, scenario, rng)
        check_possibilities_lockstep(
            algebra,
            Level3Algebra(scenario.universe),
            mapping_4_to_3(scenario.universe),
            events,
        )

    def test_witness_only_for_initial_state(self, uni):
        mapping = mapping_4_to_3(uni)
        algebra = Level4Algebra(uni)
        t1 = U.child(1)
        state = algebra.run(
            [Create(t1), Create(t1.child("w")), Perform(t1.child("w"), 0)]
        )
        with pytest.raises(ValueError):
            mapping.witness(state)

    def test_possibilities_set_is_not_singleton(self):
        """Two *different* version maps with the same eval are both members
        of h''(state) — the paper's point about discarded information."""
        from repro.core.level3 import Level3State

        universe = Universe()
        universe.define_object("x", init=0)
        t1, t2 = U.child(1), U.child(2)
        w1 = t1.child("w")  # add 5
        w2 = t2.child("w")  # write 5: a different access, same end value
        universe.declare_access(w1, "x", add(5))
        universe.declare_access(w2, "x", write(5))

        mapping = mapping_4_to_3(universe)
        algebra = Level4Algebra(universe)
        level3 = Level3Algebra(universe)
        events = [Create(t1), Create(w1), Perform(w1, 0)]
        state4 = algebra.run(events)
        state3 = level3.run(events)
        assert mapping.contains(state4, state3)
        # Hand-build a different version map: holder w1 carries the
        # sequence (w2) instead of (w1); eval is identical (both yield 5).
        other_versions = VersionMap({"x": {U: (), w1: (w2,)}})
        other = Level3State(state3.aat, other_versions)
        assert other_versions != state3.versions
        assert mapping.contains(state4, other)
