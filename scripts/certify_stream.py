#!/usr/bin/env python
"""Certify a trace stream incrementally, as CI's streaming gate.

Reads JSON lines from files (or stdin with ``-``) and feeds them through
:class:`repro.checker.StreamingCertifier` — the same incremental
Theorem-9 checker the engine runs live under ``certify="streaming"``.
Two line shapes are understood, and may be interleaved in one stream:

* **raw trace records** — objects with an ``"op"`` key, the shape
  ``TraceRecorder.dump`` writes;
* **bus events** — objects with a ``"kind"`` key, the shape
  ``repro.obs.JsonlFileSink`` writes.  ``trace_record`` events carry a
  trace record in their ``"record"`` field (see ``TraceBusBridge``);
  every other event kind is passed over, so a ``--with-metrics`` smoke
  stream certifies directly.

The initial value assignment must be supplied: ``--objects N`` for the
standard workload population (``obj0000..`` all zero, matching
``repro.workload.initial_values``), or ``--initial PATH`` for a JSON
object of explicit values (e.g. the ``.initial.json`` sibling the
crash-recovery smoke writes next to each post-recovery trace).

Exit status: 0 when the stream certifies, 1 on any violation, 2 on
unusable input.  ``--report`` archives the full structured verdict
(violations, counters, window high-waters) as a JSON artifact.

Usage:
    PYTHONPATH=src python scripts/certify_stream.py --objects 32 smoke_metrics.jsonl
    PYTHONPATH=src python scripts/certify_stream.py \
        --initial t.trace.jsonl.initial.json --report verdict.json t.trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.checker import StreamingCertifier  # noqa: E402
from repro.workload import initial_values  # noqa: E402


def iter_lines(paths):
    """Yield ``(source, line_number, text)`` over every input line."""
    if not paths:
        paths = ["-"]
    for path in paths:
        if path == "-":
            for number, text in enumerate(sys.stdin, 1):
                yield "<stdin>", number, text
        else:
            with open(path, encoding="utf-8") as fh:
                for number, text in enumerate(fh, 1):
                    yield path, number, text


def feed_stream(certifier, paths):
    """Feed every trace-bearing line to the certifier.

    Returns ``(records, skipped_events, bad_lines)`` where ``bad_lines``
    collects ``(source, line_number, reason)`` for undecodable input.
    """
    records = 0
    skipped = 0
    bad = []
    for source, number, text in iter_lines(paths):
        text = text.strip()
        if not text:
            continue
        try:
            data = json.loads(text)
        except ValueError as error:
            bad.append((source, number, "not JSON: %s" % error))
            continue
        if not isinstance(data, dict):
            bad.append((source, number, "not a JSON object"))
            continue
        if "op" in data:
            record = data
        elif data.get("kind") == "trace_record":
            record = data.get("record")
            if not isinstance(record, dict):
                bad.append((source, number, "trace_record event without record"))
                continue
        elif "kind" in data:
            skipped += 1  # some other engine event; not trace-bearing
            continue
        else:
            bad.append((source, number, "neither a trace record nor an event"))
            continue
        try:
            certifier.feed_dict(record)
        except (KeyError, TypeError, ValueError) as error:
            bad.append((source, number, "malformed trace record: %s" % error))
            continue
        records += 1
    return records, skipped, bad


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "streams",
        nargs="*",
        help="JSONL files to certify, in order ('-' or nothing = stdin)",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--objects",
        type=int,
        help="initial values are the standard N-object zero population",
    )
    group.add_argument(
        "--initial",
        help="path to a JSON object of explicit initial values",
    )
    parser.add_argument(
        "--report",
        help="write the structured verdict (violations + stats) as JSON here",
    )
    args = parser.parse_args(argv)

    if args.initial is not None:
        with open(args.initial, encoding="utf-8") as fh:
            initial = json.load(fh)
        if not isinstance(initial, dict):
            print("--initial must hold a JSON object", file=sys.stderr)
            return 2
    else:
        initial = initial_values(args.objects)

    certifier = StreamingCertifier(initial)
    records, skipped, bad = feed_stream(certifier, args.streams)
    report = certifier.finish()

    if args.report:
        verdict = report.to_dict()
        verdict["input"] = {
            "records": records,
            "skipped_events": skipped,
            "bad_lines": ["%s:%d: %s" % entry for entry in bad],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(verdict, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for source, number, reason in bad:
        print("%s:%d: %s" % (source, number, reason), file=sys.stderr)
    if records == 0:
        print("certify_stream: no trace records in input", file=sys.stderr)
        return 2

    status = "CERTIFIED" if report.ok else "VIOLATION"
    print(
        "%s: %d records (%d events skipped), %d permanent accesses, "
        "window high-water %d live tops / %d edges, %d retired"
        % (
            status,
            records,
            skipped,
            report.permanent_accesses,
            report.stats.get("max_live_tops", 0),
            report.stats.get("max_graph_edges", 0),
            report.stats.get("retired_tops", 0),
        )
    )
    for violation in report.violations:
        print(
            "  %s @seq=%s obj=%s: %s"
            % (violation.kind, violation.seq, violation.obj, violation.message),
            file=sys.stderr,
        )
    if bad:
        return 2
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
