#!/usr/bin/env python
"""Run a scenario on the sharded multi-process cluster and judge it.

Each shard is a real OS process running the full engine stack (striped
lock manager + per-shard WAL); the coordinator drives cross-shard 2PC,
replicates the scenario's ledger counters with available-copies
semantics, and (unless ``--uncertified``) merges every shard's trace
stream and certifies it with both the streaming certifier and the
offline oracle.  ``--kill-site`` SIGKILLs a shard mid-run and revives it
through WAL recovery + replica resync.

Exit codes follow the fleet convention (docs/scenarios.md): 0 every
verdict passed, 1 a verdict failed (the JSON report names it), 2 bad
invocation.

Usage:
    PYTHONPATH=src python scripts/run_cluster.py [--scenario NAME]
        [--shards N] [--programs N] [--users N] [--threads N] [--seed N]
        [--kill-site I] [--kill-at F] [--revive-at F]
        [--no-durability] [--uncertified] [--out PATH]
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.cli import EXIT_OK, EXIT_VERDICT_FAIL  # noqa: E402
from repro.cluster import run_cluster_scenario  # noqa: E402
from repro.scenarios import SCENARIOS  # noqa: E402
from repro.scenarios.chaos import SiteSchedule  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="bank",
                        choices=sorted(SCENARIOS))
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--programs", type=int, default=40)
    parser.add_argument("--users", type=int, default=None)
    parser.add_argument("--threads", type=int, default=6)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--kill-site", type=int, default=None,
                        help="SIGKILL this shard mid-run and revive it")
    parser.add_argument("--kill-at", type=float, default=0.3,
                        help="run fraction at which the kill fires")
    parser.add_argument("--revive-at", type=float, default=0.6,
                        help="run fraction at which the revival fires")
    parser.add_argument("--no-durability", action="store_true",
                        help="run the shards without their per-site WAL")
    parser.add_argument("--uncertified", action="store_true",
                        help="skip trace merging and certification")
    parser.add_argument("--out", default="cluster_report.json")
    args = parser.parse_args(argv)

    if args.shards < 1:
        parser.error("--shards must be >= 1")
    sites = None
    if args.kill_site is not None:
        if not 0 <= args.kill_site < args.shards:
            parser.error("--kill-site must name one of the %d shards"
                         % args.shards)
        if args.no_durability and args.kill_site is not None:
            # A killed site without a WAL loses its committed copies; the
            # run would (correctly) fail its coherence verdict.
            parser.error("--kill-site requires durability")
        if not 0 <= args.kill_at < args.revive_at <= 1:
            parser.error("need 0 <= --kill-at < --revive-at <= 1")
        sites = SiteSchedule.kill_revive(
            site=args.kill_site, kill_at=args.kill_at,
            revive_at=args.revive_at,
        )

    result = run_cluster_scenario(
        args.scenario,
        shards=args.shards,
        programs=args.programs,
        users=args.users,
        threads=args.threads,
        seed=args.seed,
        sites=sites,
        durability=not args.no_durability,
        certified=not args.uncertified,
    )
    row = result.as_dict()
    print(
        "[%s] %-12s shards=%d committed=%d/%d in_doubt=%d killed=%d "
        "revived=%d msgs=%d certified=%s/%s coherent=%s ledger=%s"
        % (
            "ok" if result.ok else "FAIL",
            result.scenario,
            result.shards,
            result.committed,
            result.programs,
            result.in_doubt,
            result.sites_killed,
            result.sites_revived,
            result.messages,
            result.certified_streaming,
            result.certified_oracle,
            result.replicas_coherent,
            result.ledger_ok,
        )
    )
    for label in ("invariant_violation", "ledger_violation"):
        if row.get(label):
            print("    - %s" % row[label])
    for mismatch in result.coherence_mismatches:
        print("    - replica mismatch: %s" % mismatch)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(row, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    print("report: %s" % args.out)
    return EXIT_OK if result.ok else EXIT_VERDICT_FAIL


if __name__ == "__main__":
    sys.exit(main())
