#!/usr/bin/env python
"""Run the chaos-certified scenario fleet and write a JSON report.

Each selected scenario (bank / marketplace / social) is compiled to
nested-transaction programs, executed on the engine with the streaming
Theorem-9 certifier subscribed, and judged three ways: certifier verdict,
the scenario's conservation invariant, and failure containment.  The
optional chaos stages layer on fsync-error poisoning (``--fsync-poison``)
and a SIGKILL crash-and-recover cycle (``--crash``).

Exit codes follow the fleet convention (docs/scenarios.md): 0 every
verdict passed, 1 a verdict failed (the JSON report names the
violation), 2 bad invocation.

Usage:
    PYTHONPATH=src python scripts/run_scenarios.py [--scenario NAME]...
        [--programs N] [--users N] [--threads N] [--seed N]
        [--chaos none|steady|burst|ramp|storm] [--fsync-poison] [--crash]
        [--out PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.cli import EXIT_OK, EXIT_VERDICT_FAIL  # noqa: E402
from repro.scenarios import (  # noqa: E402
    SCENARIOS,
    ChaosSchedule,
    run_fsync_poison_scenario,
    run_scenario,
    run_scenario_crash,
)


def make_schedule(kind, seed):
    if kind == "none":
        return None
    if kind == "steady":
        return ChaosSchedule.steady(0.3, seed=seed)
    if kind == "burst":
        return ChaosSchedule.burst(0.05, window=(0.4, 0.6), prob=0.8, seed=seed)
    if kind == "ramp":
        return ChaosSchedule.ramp(0.0, 0.5, seed=seed)
    if kind == "storm":
        return ChaosSchedule.storm(hot_prob=0.9, background=0.05, seed=seed)
    raise ValueError(kind)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only these scenarios (default: the whole fleet)",
    )
    parser.add_argument("--programs", type=int, default=120)
    parser.add_argument("--users", type=int, default=None,
                        help="logical population (default: each scenario's "
                        "full scale — millions)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--chaos", default="burst",
                        choices=("none", "steady", "burst", "ramp", "storm"))
    parser.add_argument("--fsync-poison", action="store_true",
                        help="also run the scheduled-fsync-failure stage "
                        "per scenario")
    parser.add_argument("--crash", action="store_true",
                        help="also run the SIGKILL crash-and-recover stage "
                        "per scenario")
    parser.add_argument("--out", default="scenario_report.json")
    args = parser.parse_args(argv)

    names = args.scenario or sorted(SCENARIOS)
    results = []
    failed = 0
    for name in names:
        start = time.monotonic()
        result = run_scenario(
            name,
            programs=args.programs,
            users=args.users,
            threads=args.threads,
            seed=args.seed,
            chaos=make_schedule(args.chaos, args.seed),
            certify="streaming",
        )
        entry = result.as_dict()
        entry["seconds"] = round(time.monotonic() - start, 3)
        print(
            "[%s] %-12s users=%-9d committed=%d/%d injected=%d "
            "containment=%.2f goodput=%.0f p95=%.2fms certified=%s"
            % (
                "ok" if result.ok else "FAIL",
                name,
                result.users,
                result.committed,
                result.programs,
                result.injected,
                result.containment,
                result.goodput,
                result.p95_ms,
                result.certified,
            )
        )
        if not result.ok:
            failed += 1
            if result.invariant_violation:
                print("    - %s" % result.invariant_violation)

        if args.fsync_poison:
            with tempfile.TemporaryDirectory(prefix="scn-fsync-") as directory:
                outcome = run_fsync_poison_scenario(
                    name,
                    directory,
                    programs=min(args.programs, 40),
                    users=args.users or 100_000,
                    seed=args.seed,
                )
            entry["fsync_poison"] = outcome
            poison_ok = outcome["poisoned"] and outcome["invariant_ok"]
            print(
                "[%s] %-12s fsync-poison: surfaced=%s invariant=%s "
                "replayed=%s"
                % (
                    "ok" if poison_ok else "FAIL",
                    name,
                    outcome["poisoned"],
                    outcome["invariant_ok"],
                    outcome["committed_before_poison"],
                )
            )
            if not poison_ok:
                failed += 1

        if args.crash:
            with tempfile.TemporaryDirectory(prefix="scn-crash-") as directory:
                try:
                    crash = run_scenario_crash(
                        directory,
                        name,
                        programs=min(args.programs, 40),
                        users=args.users or 50_000,
                        seed=args.seed,
                        min_acks=10,
                    )
                    entry["crash"] = crash.as_dict()
                    crash_ok = crash.ok
                    detail = "; ".join(crash.failures)
                except RuntimeError as error:  # harness problem
                    entry["crash"] = {"ok": False, "failures": [str(error)]}
                    crash_ok, detail = False, str(error)
            print(
                "[%s] %-12s crash: acked=%s ledger=%s deterministic=%s%s"
                % (
                    "ok" if crash_ok else "FAIL",
                    name,
                    entry["crash"].get("acked_programs", "?"),
                    entry["crash"].get("ledger_value", "?"),
                    entry["crash"].get("deterministic", "?"),
                    (" (%s)" % detail) if detail else "",
                )
            )
            if not crash_ok:
                failed += 1

        results.append(entry)

    batch = {"ok": failed == 0, "chaos": args.chaos, "scenarios": results}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(batch, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    print("report: %s (%d checks failed)" % (args.out, failed))
    return EXIT_VERDICT_FAIL if failed else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
