#!/usr/bin/env python
"""CI saturation smoke: one serve-layer cell, streaming-certified, with
a calibrated regression gate against the committed E15 artifact.

Runs a single cell (default: the async front-end, global latch, 1k
sessions) via :mod:`repro.serve.loadgen` — the exact code path behind
``benchmarks/bench_e15_saturation.py`` — and gates on *calibrated*
committed txn/s: the measured rate multiplied by this machine's trivial
Python loop cost (ns/iteration), which cancels raw CPU speed the same
way the E10 hot-path gate does.  A slower CI runner therefore does not
read as a serving regression; an actual serving regression does.

Usage (the CI ``saturation-smoke`` job)::

    python scripts/serve_bench.py --sessions 1000 \
        --baseline benchmarks/results/BENCH_e15_saturation.json \
        --max-regression 0.5 --out serve_smoke.json

Exit codes follow ``repro.cli``: 0 verdicts passed, 1 a verdict failed
(certification or the regression gate — the JSON names it), 2 bad
invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.cli import EXIT_OK, EXIT_USAGE, EXIT_VERDICT_FAIL
from repro.serve.loadgen import (
    calibration_loop_ns,
    host_info,
    run_async_cell,
    run_threaded_cell,
)


def calibrated_rate(cell: dict, loop_ns: float) -> float:
    """Machine-independent throughput: committed/s x ns-per-loop.  Both
    factors scale (inversely / directly) with raw CPU speed, so the
    product survives runner-generation changes."""
    return float(cell.get("committed_per_s", 0.0)) * loop_ns


def find_baseline_cell(doc: dict, driver: str, mode: str) -> dict | None:
    """The committed cell to gate against: same driver and latch mode,
    smallest session count at or above the smoke size (the committed
    sweep starts at 1k — CI's smoke cell)."""
    candidates = [
        c
        for c in doc.get("cells", [])
        if c.get("driver") == driver
        and c.get("latch_mode") == mode
        and not c.get("error")
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda c: c.get("sessions", 0))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=1000)
    parser.add_argument("--driver", choices=("async", "threaded"), default="async")
    parser.add_argument("--mode", choices=("global", "striped"), default="global")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip streaming certification (gates throughput only)",
    )
    parser.add_argument(
        "--baseline",
        help="committed BENCH_e15_saturation.json to gate against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="allowed drop in calibrated committed txn/s vs baseline",
    )
    parser.add_argument("--out", help="write the JSON report here")
    args = parser.parse_args(argv)

    if args.sessions <= 0 or args.workers <= 0 or args.max_batch <= 0:
        parser.error("--sessions/--workers/--max-batch must be positive")
    baseline_doc = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline_doc = json.load(fh)
        except (OSError, ValueError) as error:
            print("unusable baseline %s: %s" % (args.baseline, error))
            return EXIT_USAGE

    certify = None if args.no_certify else "streaming"
    loop_ns = calibration_loop_ns()
    failures = []
    try:
        if args.driver == "async":
            cell = run_async_cell(
                args.mode,
                sessions=args.sessions,
                workers=args.workers,
                max_batch=args.max_batch,
                certify=certify,
            )
        else:
            cell = run_threaded_cell(
                args.mode, sessions=args.sessions, certify=certify
            )
    except Exception as error:  # certification/engine verdicts fail the job
        cell = {"driver": args.driver, "latch_mode": args.mode}
        failures.append("run failed: %r" % (error,))

    report = {
        "host": host_info(),
        "calibration_loop_ns": round(loop_ns, 2),
        "cell": cell,
        "calibrated_rate": round(calibrated_rate(cell, loop_ns), 1),
        "failures": failures,
    }

    if not failures:
        if cell.get("error"):
            failures.append("cell error: %s" % cell["error"])
        if certify and not cell.get("certified"):
            failures.append("cell ran uncertified")
        if baseline_doc is not None:
            base_cell = find_baseline_cell(baseline_doc, args.driver, args.mode)
            base_ns = baseline_doc.get("calibration_loop_ns")
            if base_cell is None or not base_ns:
                failures.append(
                    "baseline lacks a %s/%s cell with calibration"
                    % (args.driver, args.mode)
                )
            else:
                base = calibrated_rate(base_cell, float(base_ns))
                now = calibrated_rate(cell, loop_ns)
                report["gate"] = {
                    "baseline_sessions": base_cell.get("sessions"),
                    "baseline_calibrated": round(base, 1),
                    "current_calibrated": round(now, 1),
                    "max_regression": args.max_regression,
                }
                if base > 0 and now < base * (1.0 - args.max_regression):
                    failures.append(
                        "calibrated committed txn/s regressed %.1f%% "
                        "(%.1f -> %.1f, gate %.0f%%)"
                        % (
                            100.0 * (1.0 - now / base),
                            base,
                            now,
                            args.max_regression * 100,
                        )
                    )

    report["failures"] = failures
    text = json.dumps(report, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return EXIT_VERDICT_FAIL if failures else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
