#!/usr/bin/env python
"""cProfile harness for the engine's data-access hot path.

Runs a single-threaded batch of committed read/write transactions —
the same inner loop as ``benchmarks/bench_e10_hotpath.py`` — under
:mod:`cProfile` and prints the top functions by cumulative and internal
time.  Use it to answer "where does a transaction's latency actually
go?" before and after touching the hot path::

    PYTHONPATH=src python scripts/profile_hotpath.py
    PYTHONPATH=src python scripts/profile_hotpath.py --latch-mode striped
    PYTHONPATH=src python scripts/profile_hotpath.py --no-trace --sort tottime

Findings are stable across runs because the workload is deterministic
(seeded RNG, fixed object pool).  After the hot-path overhaul the
remaining profile is dominated by the unavoidable skeleton — latch
acquire/release (``threading`` internals), the ``conflicts_with`` loop,
and version-stack reads — rather than by name re-validation, trace
dataclass construction, or ``time.monotonic`` calls, which previously
accounted for a large share of inclusive time.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import sys


def run_workload(
    txns: int,
    ops: int,
    objects: int,
    latch_mode: str,
    trace: bool,
    nested: bool,
    seed: int = 42,
) -> None:
    from repro.engine import EngineConfig, NestedTransactionDB

    initial = {"x%d" % i: 0 for i in range(objects)}
    db = NestedTransactionDB(initial, config=EngineConfig(latch_mode=latch_mode, record_trace=trace))
    rng = random.Random(seed)
    names = list(initial)
    for _ in range(txns):
        txn = db.begin_transaction()
        if nested:
            for _ in range(2):
                child = txn.begin_subtransaction()
                for i in range(ops // 2):
                    obj = names[rng.randrange(len(names))]
                    if i % 2 == 0:
                        child.read(obj)
                    else:
                        child.write(obj, i)
                child.commit()
        else:
            for i in range(ops):
                obj = names[rng.randrange(len(names))]
                if i % 2 == 0:
                    txn.read(obj)
                else:
                    txn.write(obj, i)
        txn.commit()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--txns", type=int, default=2000)
    parser.add_argument("--ops", type=int, default=16, help="ops per txn")
    parser.add_argument("--objects", type=int, default=64)
    parser.add_argument(
        "--latch-mode", choices=("global", "striped"), default="global"
    )
    parser.add_argument(
        "--no-trace", action="store_true", help="disable trace recording"
    )
    parser.add_argument(
        "--nested",
        action="store_true",
        help="run ops inside two subtransactions per txn",
    )
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default="cumulative",
    )
    parser.add_argument("--lines", type=int, default=30)
    parser.add_argument(
        "--out", default=None, help="also save raw stats to this file"
    )
    args = parser.parse_args(argv)

    import repro.engine  # noqa: F401 - import cost outside the profile

    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(
        args.txns,
        args.ops,
        args.objects,
        args.latch_mode,
        not args.no_trace,
        args.nested,
    )
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    print(
        "hot path profile: %d txns x %d ops, latch=%s trace=%s nested=%s"
        % (
            args.txns,
            args.ops,
            args.latch_mode,
            not args.no_trace,
            args.nested,
        )
    )
    stats.print_stats(args.lines)
    if args.out:
        stats.dump_stats(args.out)
        print("raw stats written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
