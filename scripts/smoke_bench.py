#!/usr/bin/env python
"""CI smoke benchmark: a down-scaled E1 cell in both latch modes.

Runs in seconds, not minutes.  For each ``latch_mode`` the same workload
executes with trace recording on; the run then must

* commit every program,
* pass the serializability oracle **and** the level-2 trace-conformance
  replay (``repro.checker.check_engine``), and
* quiesce (no leaked locks or dangling versions).

The JSON summary (throughput, conflict counters, oracle verdicts) is
written to ``--out`` for upload as a workflow artifact.  Exit status is
non-zero if any mode fails its checks — in particular, if the striped
engine's trace replay fails, CI fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.checker import OracleViolation, check_engine
from repro.engine import EngineConfig, NestedTransactionDB, TraceBusBridge
from repro.obs import JsonlFileSink
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values

MODES = ("global", "striped")
OBJECTS = 32  # the CI streaming gate passes --objects 32 to certify_stream


def run_mode(
    latch_mode: str,
    threads: int,
    programs: int,
    metrics_jsonl=None,
    certify: bool = False,
) -> dict:
    db = NestedTransactionDB(initial_values(OBJECTS), config=EngineConfig(latch_mode=latch_mode, record_trace=True, certify="streaming" if certify else None))
    if metrics_jsonl is not None:
        db.metrics.enable()
        db.events.attach(JsonlFileSink(metrics_jsonl))
        # Republish every trace record on the bus: the JSONL event stream
        # then doubles as a certifiable trace stream — CI pipes it
        # through scripts/certify_stream.py as an independent gate.
        db.trace.add_listener(TraceBusBridge(db.events))
    config = WorkloadConfig(
        objects=32,
        theta=0.6,
        shape="mixed",
        ops_per_transaction=8,
        programs=programs,
        seed=7,
    )
    report = execute(
        db,
        WorkloadGenerator(config).programs(),
        threads=threads,
        failure_prob=0.1,
        seed=7,
    )
    summary = {
        "latch_mode": latch_mode,
        "stripes": db.stripe_count,
        "committed_programs": report.committed_programs,
        "programs": programs,
        "throughput": round(report.throughput, 1),
        "goodput": round(report.goodput, 1),
        "retries": report.retries,
        "trace_records": len(db.trace.records),
        "db_stats": report.db_stats,
    }
    ok = True
    try:
        oracle = check_engine(db)
        summary["oracle_ok"] = bool(oracle.ok)
        ok &= bool(oracle.ok)
    except OracleViolation as violation:
        summary["oracle_ok"] = False
        summary["oracle_error"] = str(violation)
        ok = False
    try:
        db.assert_quiescent()
        summary["quiescent"] = True
    except AssertionError as leak:
        summary["quiescent"] = False
        summary["quiescence_error"] = str(leak)
        ok = False
    if report.committed_programs != programs:
        ok = False
    if certify:
        # The live streaming certifier must agree with the offline
        # oracle that just replayed the same trace — a per-commit
        # differential check of the incremental Theorem-9 path.
        streaming = db.certifier.finish()
        summary["streaming_ok"] = bool(streaming.ok)
        summary["streaming_stats"] = streaming.stats
        if not streaming.ok:
            summary["streaming_violations"] = [
                v.to_dict() for v in streaming.violations
            ]
            ok = False
        if streaming.ok != summary["oracle_ok"]:
            summary["streaming_disagrees_with_oracle"] = True
            ok = False
        if db.trace.listener_errors:
            summary["trace_listener_errors"] = db.trace.listener_errors
            summary["trace_listener_error"] = repr(db.trace.last_listener_error)
            ok = False
    if metrics_jsonl is not None:
        # Embed the registry snapshot and hold the run to the sink
        # contract: any sink exception fails the smoke benchmark.
        summary["metrics"] = db.metrics.snapshot()
        summary["events_emitted"] = db.events.emitted
        summary["sink_errors"] = db.events.sink_errors
        db.events.close()
        if db.events.sink_errors:
            summary["sink_error"] = repr(db.events.last_sink_error)
            ok = False
    summary["ok"] = ok
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="smoke_bench.json")
    parser.add_argument("--threads", type=int, default=6)
    parser.add_argument("--programs", type=int, default=40)
    parser.add_argument(
        "--with-metrics",
        action="store_true",
        help="enable the metrics registry, stream engine events (and the "
        "full trace) to per-mode JSONL files derived from --metrics-out, "
        "and fail if any event sink raised",
    )
    parser.add_argument(
        "--metrics-out",
        default="smoke_metrics.jsonl",
        help="base name for the per-mode event streams; smoke_metrics.jsonl "
        "becomes smoke_metrics.global.jsonl and smoke_metrics.striped.jsonl",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="run the streaming certifier live on each mode's trace and "
        "fail unless it certifies AND agrees with the offline oracle",
    )
    args = parser.parse_args(argv)

    summaries = []
    for mode in MODES:
        metrics_fh = None
        if args.with_metrics:
            # One stream per mode: each engine starts from the same zero
            # population, so each file certifies independently against
            # ``--objects 32`` (concatenating them would replay mode 2
            # against mode 1's final values).
            base, ext = os.path.splitext(args.metrics_out)
            metrics_fh = open(
                "%s.%s%s" % (base, mode, ext or ".jsonl"), "w", encoding="utf-8"
            )
        try:
            summaries.append(
                run_mode(mode, args.threads, args.programs, metrics_fh, args.certify)
            )
        finally:
            if metrics_fh is not None:
                metrics_fh.close()
    result = {"experiment": "ci-smoke-e1", "modes": summaries}
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)

    for summary in summaries:
        status = "ok" if summary["ok"] else "FAILED"
        line = "%-8s %-7s %6.1f txn/s  oracle=%s quiescent=%s" % (
            summary["latch_mode"],
            status,
            summary["throughput"],
            summary.get("oracle_ok"),
            summary.get("quiescent"),
        )
        if "streaming_ok" in summary:
            line += " streaming=%s" % summary["streaming_ok"]
        print(line)
    if not all(summary["ok"] for summary in summaries):
        print("smoke benchmark FAILED; see %s" % args.out, file=sys.stderr)
        return 1
    print("smoke benchmark passed; summary written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
