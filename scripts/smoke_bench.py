#!/usr/bin/env python
"""CI smoke benchmark: a down-scaled E1 cell in both latch modes.

Runs in seconds, not minutes.  For each ``latch_mode`` the same workload
executes with trace recording on; the run then must

* commit every program,
* pass the serializability oracle **and** the level-2 trace-conformance
  replay (``repro.checker.check_engine``), and
* quiesce (no leaked locks or dangling versions).

The JSON summary (throughput, conflict counters, oracle verdicts) is
written to ``--out`` for upload as a workflow artifact.  Exit status is
non-zero if any mode fails its checks — in particular, if the striped
engine's trace replay fails, CI fails.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.checker import OracleViolation, check_engine
from repro.engine import NestedTransactionDB
from repro.obs import JsonlFileSink
from repro.workload import WorkloadConfig, WorkloadGenerator, execute, initial_values

MODES = ("global", "striped")


def run_mode(
    latch_mode: str,
    threads: int,
    programs: int,
    metrics_jsonl=None,
) -> dict:
    db = NestedTransactionDB(
        initial_values(32), latch_mode=latch_mode, record_trace=True
    )
    if metrics_jsonl is not None:
        db.metrics.enable()
        db.events.attach(JsonlFileSink(metrics_jsonl))
    config = WorkloadConfig(
        objects=32,
        theta=0.6,
        shape="mixed",
        ops_per_transaction=8,
        programs=programs,
        seed=7,
    )
    report = execute(
        db,
        WorkloadGenerator(config).programs(),
        threads=threads,
        failure_prob=0.1,
        seed=7,
    )
    summary = {
        "latch_mode": latch_mode,
        "stripes": db.stripe_count,
        "committed_programs": report.committed_programs,
        "programs": programs,
        "throughput": round(report.throughput, 1),
        "goodput": round(report.goodput, 1),
        "retries": report.retries,
        "trace_records": len(db.trace.records),
        "db_stats": report.db_stats,
    }
    ok = True
    try:
        oracle = check_engine(db)
        summary["oracle_ok"] = bool(oracle.ok)
        ok &= bool(oracle.ok)
    except OracleViolation as violation:
        summary["oracle_ok"] = False
        summary["oracle_error"] = str(violation)
        ok = False
    try:
        db.assert_quiescent()
        summary["quiescent"] = True
    except AssertionError as leak:
        summary["quiescent"] = False
        summary["quiescence_error"] = str(leak)
        ok = False
    if report.committed_programs != programs:
        ok = False
    if metrics_jsonl is not None:
        # Embed the registry snapshot and hold the run to the sink
        # contract: any sink exception fails the smoke benchmark.
        summary["metrics"] = db.metrics.snapshot()
        summary["events_emitted"] = db.events.emitted
        summary["sink_errors"] = db.events.sink_errors
        db.events.close()
        if db.events.sink_errors:
            summary["sink_error"] = repr(db.events.last_sink_error)
            ok = False
    summary["ok"] = ok
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="smoke_bench.json")
    parser.add_argument("--threads", type=int, default=6)
    parser.add_argument("--programs", type=int, default=40)
    parser.add_argument(
        "--with-metrics",
        action="store_true",
        help="enable the metrics registry, stream engine events to "
        "--metrics-out as JSONL, and fail if any event sink raised",
    )
    parser.add_argument("--metrics-out", default="smoke_metrics.jsonl")
    args = parser.parse_args(argv)

    metrics_fh = None
    if args.with_metrics:
        metrics_fh = open(args.metrics_out, "w", encoding="utf-8")
    try:
        summaries = [
            run_mode(mode, args.threads, args.programs, metrics_fh)
            for mode in MODES
        ]
    finally:
        if metrics_fh is not None:
            metrics_fh.close()
    result = {"experiment": "ci-smoke-e1", "modes": summaries}
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)

    for summary in summaries:
        status = "ok" if summary["ok"] else "FAILED"
        print(
            "%-8s %-7s %6.1f txn/s  oracle=%s quiescent=%s"
            % (
                summary["latch_mode"],
                status,
                summary["throughput"],
                summary.get("oracle_ok"),
                summary.get("quiescent"),
            )
        )
    if not all(summary["ok"] for summary in summaries):
        print("smoke benchmark FAILED; see %s" % args.out, file=sys.stderr)
        return 1
    print("smoke benchmark passed; summary written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
