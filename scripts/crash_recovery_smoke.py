#!/usr/bin/env python
"""CI crash-recovery smoke: kill durable workers, recover, write a report.

Runs the crash-restart harness (``repro.durability.crashtest``) across a
small matrix of latch modes and sync policies, collects each scenario's
:class:`CrashReport`, and writes the whole batch as JSON (default
``crash_recovery_report.json``, override with ``--out``) so CI can upload
it as an artifact.  Exits nonzero when any scenario violates the
durability contract — the JSON then names the failed invariants.

Usage:
    PYTHONPATH=src python scripts/crash_recovery_smoke.py [--out PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.durability.crashtest import run_crash_recovery_scenario  # noqa: E402

SCENARIOS = [
    {"latch": "global", "sync": "commit", "seed": 11},
    {"latch": "striped", "sync": "commit", "seed": 12},
    {"latch": "striped", "sync": "group", "seed": 13},
    {"latch": "global", "sync": "commit", "seed": 14, "checkpoint_interval": 20,
     "min_acks": 60},
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="crash_recovery_report.json")
    parser.add_argument("--min-acks", type=int, default=30)
    parser.add_argument(
        "--certify",
        choices=("streaming",),
        default=None,
        help="subscribe the incremental certifier to each scenario's "
        "post-recovery trace; its verdict must be clean",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="archive each scenario's post-recovery trace (JSONL plus "
        "<name>.initial.json) here for offline re-certification via "
        "scripts/certify_stream.py",
    )
    args = parser.parse_args(argv)

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)

    results = []
    failed = 0
    for index, scenario in enumerate(SCENARIOS):
        params = dict(scenario)
        params.setdefault("min_acks", args.min_acks)
        params.setdefault("certify", args.certify)
        if args.trace_dir:
            params.setdefault(
                "trace_dump",
                os.path.join(
                    args.trace_dir,
                    "scenario%d_%s_%s.trace.jsonl"
                    % (index, scenario["latch"], scenario["sync"]),
                ),
            )
        with tempfile.TemporaryDirectory(prefix="crash-smoke-") as directory:
            start = time.monotonic()
            try:
                report = run_crash_recovery_scenario(directory, **params)
                entry = report.as_dict()
            except RuntimeError as error:  # harness problem, not a verdict
                entry = {"ok": False, "failures": ["harness: %s" % error]}
                entry.update({"latch": params["latch"], "sync": params["sync"]})
            entry["scenario"] = scenario
            entry["seconds"] = round(time.monotonic() - start, 3)
        results.append(entry)
        status = "ok" if entry["ok"] else "FAIL"
        print(
            "[%s] latch=%-7s sync=%-6s acked=%s recovered=%s replayed=%s "
            "ckpt=%s (%.1fs)"
            % (
                status,
                entry.get("latch"),
                entry.get("sync"),
                entry.get("acked_commits", "?"),
                entry.get("recovered_total", "?"),
                entry.get("commits_replayed", "?"),
                entry.get("checkpoint_seq", "?"),
                entry["seconds"],
            )
        )
        if not entry["ok"]:
            failed += 1
            for failure in entry["failures"]:
                print("    - %s" % failure)

    batch = {"ok": failed == 0, "scenarios": results}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(batch, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("report: %s (%d/%d scenarios passed)"
          % (args.out, len(results) - failed, len(results)))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
