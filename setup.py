"""Legacy shim so editable installs work without the ``wheel`` package
(offline environment); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
